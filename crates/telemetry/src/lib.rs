//! # san-telemetry — cross-layer observability for the SAN reproduction
//!
//! The paper's evaluation (Figs 3–9, Tables 1–3) is entirely about where
//! time and packets go: NIC occupancy, ACK lag, retransmission storms,
//! probe counts. This crate gives every layer of the reproduction one
//! shared lens on those questions:
//!
//! * a **metrics registry** ([`Telemetry::counter`] & friends) —
//!   hierarchically named counters, gauges, histograms and summaries
//!   (`fabric.link.3.busy_ns`, `ft.node.2.retransmits`,
//!   `svm.node.0.lock_wait_ns`). The per-layer stats structs
//!   (`EngineStats`, `NicStats`, `VmmcStats`...) are thin views over
//!   registered cells, so existing accessors keep working while the
//!   benches enumerate everything uniformly;
//! * a **structured trace ring** ([`Telemetry::record`]) — a bounded,
//!   zero-alloc-on-hot-path recorder of packet/protocol events with
//!   virtual-ns timestamps, filterable by layer and node. A disabled
//!   recorder is one enum branch (see `benches/telemetry.rs` in
//!   `san-bench` for the overhead proof);
//! * a **packet-lifecycle reconstructor** ([`lifecycle::reconstruct`]) —
//!   joins trace events by `(src, dst, generation, seq)` into per-packet
//!   timelines, e.g. proving a Figure 5 retransmission was spurious
//!   because delivery preceded the timer;
//! * **exporters** ([`export`]) — JSON and CSV dumps plus a compact text
//!   summary; every `san-bench` binary takes `--telemetry <dir>`.
//!
//! A [`Telemetry`] handle is cheap to clone (it is an `Arc`) and is
//! threaded through cluster construction via `ClusterConfig::telemetry`;
//! the handle the caller keeps observes everything the simulation
//! recorded.

pub mod export;
pub mod lifecycle;
pub mod metrics;
pub mod trace;

use std::sync::Arc;

pub use metrics::{
    Counter, Gauge, HistogramHandle, MetricKind, MetricValue, RegistryError, Snapshot,
    SnapshotEntry, SummaryHandle,
};
pub use trace::{Layer, TraceEvent, TraceFilter, TraceKind, TraceScan};

use trace::{Recorder, Ring};

/// Per-simulation observability handle: metrics registry + trace recorder.
///
/// Cloning is cheap and shares state. The default handle has the recorder
/// disabled; metrics always work.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    registry: metrics::Registry,
    recorder: Recorder,
}

impl Default for Inner {
    fn default() -> Self {
        Self {
            registry: metrics::Registry::default(),
            recorder: Recorder::Off,
        }
    }
}

impl Telemetry {
    /// Metrics-only handle; the trace recorder is disabled (one branch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle with tracing enabled: a pre-allocated ring of `capacity`
    /// events that overwrites the oldest when full.
    pub fn with_trace(capacity: usize) -> Self {
        Self::with_trace_filter(capacity, TraceFilter::all())
    }

    /// Tracing with a record-time filter (layer bitmask and/or node).
    pub fn with_trace_filter(capacity: usize, filter: TraceFilter) -> Self {
        Self {
            inner: Arc::new(Inner {
                registry: metrics::Registry::default(),
                recorder: Recorder::On(Ring::new(capacity, filter)),
            }),
        }
    }

    // ---- registry ----------------------------------------------------

    /// Get or create the counter registered under `name`.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different kind; use
    /// [`Telemetry::try_counter`] to handle collisions.
    pub fn counter(&self, name: &str) -> Counter {
        self.try_counter(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create a counter, reporting kind collisions.
    pub fn try_counter(&self, name: &str) -> Result<Counter, RegistryError> {
        self.inner.registry.counter(name)
    }

    /// Get or create the gauge registered under `name`.
    ///
    /// # Panics
    /// Panics on a kind collision; see [`Telemetry::try_gauge`].
    pub fn gauge(&self, name: &str) -> Gauge {
        self.try_gauge(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create a gauge, reporting kind collisions.
    pub fn try_gauge(&self, name: &str) -> Result<Gauge, RegistryError> {
        self.inner.registry.gauge(name)
    }

    /// Get or create the duration histogram registered under `name`.
    ///
    /// # Panics
    /// Panics on a kind collision; see [`Telemetry::try_histogram`].
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.try_histogram(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create a histogram, reporting kind collisions.
    pub fn try_histogram(&self, name: &str) -> Result<HistogramHandle, RegistryError> {
        self.inner.registry.histogram(name)
    }

    /// Get or create the scalar summary registered under `name`.
    ///
    /// # Panics
    /// Panics on a kind collision; see [`Telemetry::try_summary`].
    pub fn summary(&self, name: &str) -> SummaryHandle {
        self.try_summary(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Get or create a summary, reporting kind collisions.
    pub fn try_summary(&self, name: &str) -> Result<SummaryHandle, RegistryError> {
        self.inner.registry.summary(name)
    }

    /// Stable, lexicographically ordered reading of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.registry.snapshot()
    }

    // ---- trace -------------------------------------------------------

    /// Is the trace recorder on?
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        matches!(self.inner.recorder, Recorder::On(_))
    }

    /// Record one event. With the recorder disabled this is a single
    /// enum-discriminant branch — safe to call on any hot path.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        self.inner.recorder.record(ev);
    }

    /// Record a batch of events in order, claiming the ring head once for
    /// the whole batch. Byte-identical trace output to recording each event
    /// individually; cheaper when a dispatch emits several events.
    #[inline]
    pub fn record_batch(&self, evs: &[TraceEvent]) {
        self.inner.recorder.record_batch(evs);
    }

    /// The recorded events, oldest first. Empty when disabled.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner.recorder {
            Recorder::Off => Vec::new(),
            Recorder::On(ring) => ring.events(),
        }
    }

    /// How many events the ring has overwritten (0 = the trace is complete).
    pub fn overwritten_events(&self) -> u64 {
        match &self.inner.recorder {
            Recorder::Off => 0,
            Recorder::On(ring) => ring.overwritten(),
        }
    }

    /// Drain the ring into a [`TraceScan`] for post-hoc queries (by kind,
    /// stream, or time window). Carries the overwrite count so consumers
    /// can tell whether the history is complete.
    pub fn scan(&self) -> TraceScan {
        TraceScan::new(self.events(), self.overwritten_events())
    }

    /// Drop all recorded events (e.g. after a warmup phase).
    pub fn clear_events(&self) {
        if let Recorder::On(ring) = &self.inner.recorder {
            ring.clear();
        }
    }

    /// Compact end-of-run text summary (see [`export::text_summary`]).
    pub fn summary_text(&self) -> String {
        export::text_summary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, kind: TraceKind, node: u16, seq: u32) -> TraceEvent {
        TraceEvent {
            at_ns,
            layer: Layer::Ft,
            kind,
            node,
            src: 0,
            dst: 1,
            generation: 0,
            seq,
            aux: 0,
        }
    }

    #[test]
    fn same_name_same_kind_shares_one_cell() {
        let tel = Telemetry::new();
        let a = tel.counter("ft.node.0.retransmits");
        let b = tel.counter("ft.node.0.retransmits");
        a.hit();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn kind_collision_is_an_error() {
        let tel = Telemetry::new();
        let _c = tel.counter("x.y");
        let err = tel.try_gauge("x.y").unwrap_err();
        match &err {
            RegistryError::KindMismatch {
                name,
                registered,
                requested,
            } => {
                assert_eq!(name, "x.y");
                assert_eq!(*registered, MetricKind::Counter);
                assert_eq!(*requested, MetricKind::Gauge);
            }
        }
        assert!(err.to_string().contains("x.y"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics_on_infallible_api() {
        let tel = Telemetry::new();
        let _c = tel.counter("x.y");
        let _g = tel.gauge("x.y");
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let tel = Telemetry::new();
        // Register in non-lexicographic order.
        tel.counter("zeta").hit();
        tel.gauge("alpha").set(-4);
        tel.counter("fabric.link.10.busy_ns");
        tel.counter("fabric.link.2.busy_ns");
        let names: Vec<String> = tel
            .snapshot()
            .entries
            .iter()
            .map(|e| e.name.clone())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        // Stable across repeated snapshots.
        let again: Vec<String> = tel
            .snapshot()
            .entries
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(names, again);
    }

    #[test]
    fn batch_recording_is_byte_identical_to_singles() {
        let singles = Telemetry::with_trace(8);
        let batched = Telemetry::with_trace(8);
        let evs: Vec<TraceEvent> = (0..11u64)
            .map(|i| ev(i * 3, TraceKind::PacketInjected, (i % 4) as u16, i as u32))
            .collect();
        for e in &evs {
            singles.record(*e);
        }
        // Flush in uneven chunks, including past the wrap point.
        batched.record_batch(&evs[0..5]);
        batched.record_batch(&evs[5..5]);
        batched.record_batch(&evs[5..6]);
        batched.record_batch(&evs[6..11]);
        let a: Vec<String> = singles.events().iter().map(|e| e.to_line()).collect();
        let b: Vec<String> = batched.events().iter().map(|e| e.to_line()).collect();
        assert_eq!(a, b);
        assert_eq!(singles.overwritten_events(), batched.overwritten_events());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let tel = Telemetry::new();
        assert!(!tel.tracing_enabled());
        tel.record(ev(5, TraceKind::PacketInjected, 0, 1));
        assert!(tel.events().is_empty());
        assert_eq!(tel.overwritten_events(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let tel = Telemetry::with_trace(4);
        for i in 0..6u64 {
            tel.record(ev(i, TraceKind::PacketInjected, 0, i as u32));
        }
        let evs = tel.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].at_ns, 2, "oldest two must have been overwritten");
        assert_eq!(evs[3].at_ns, 5);
        assert_eq!(tel.overwritten_events(), 2);
        tel.clear_events();
        assert!(tel.events().is_empty());
        assert_eq!(tel.overwritten_events(), 0);
    }

    #[test]
    fn filters_select_layer_and_node() {
        let filter = TraceFilter::layers(&[Layer::Ft]).at_node(1);
        let tel = Telemetry::with_trace_filter(64, filter);
        tel.record(ev(1, TraceKind::Retransmit, 1, 0)); // kept
        tel.record(ev(2, TraceKind::Retransmit, 0, 0)); // wrong node
        let mut fab = ev(3, TraceKind::PacketInjected, 1, 0);
        fab.layer = Layer::Fabric; // wrong layer
        tel.record(fab);
        let evs = tel.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at_ns, 1);
    }

    #[test]
    fn lifecycle_joins_and_flags_false_retransmit() {
        let tel = Telemetry::with_trace(64);
        // seq 7: injected, delivered, then retransmitted after delivery.
        let mut e1 = ev(100, TraceKind::PacketInjected, 0, 7);
        e1.layer = Layer::Fabric;
        let mut e2 = ev(250, TraceKind::PacketDelivered, 1, 7);
        e2.layer = Layer::Fabric;
        let e3 = ev(400, TraceKind::Retransmit, 0, 7);
        // seq 8: genuine loss — retransmit before any delivery.
        let e4 = ev(500, TraceKind::Retransmit, 0, 8);
        let mut e5 = ev(600, TraceKind::PacketDelivered, 1, 8);
        e5.layer = Layer::Fabric;
        for e in [e1, e2, e3, e4, e5] {
            tel.record(e);
        }
        let timelines = lifecycle::reconstruct(&tel.events());
        assert_eq!(timelines.len(), 2);
        let spurious = lifecycle::false_retransmits(&tel.events());
        assert_eq!(spurious.len(), 1);
        assert_eq!(spurious[0].key.seq, 7);
        assert!(spurious[0].has_false_retransmit());
        assert!(!timelines[1].has_false_retransmit());
        let text = spurious[0].render();
        assert!(text.contains("delivered"));
        assert!(text.contains("retransmit"));
    }

    #[test]
    fn json_export_contains_families_and_is_balanced() {
        let tel = Telemetry::with_trace(16);
        tel.counter("fabric.injected").add(10);
        tel.counter("ft.node.0.retransmits").hit();
        tel.counter("nic.node.0.packets_tx").add(9);
        tel.histogram("svm.node.0.lock_wait_ns")
            .record(san_sim::Duration::from_micros(3));
        tel.summary("ft.node.0.map.times_ms").record(0.25);
        let json = export::to_json(&tel);
        for needle in [
            "\"fabric.injected\"",
            "\"ft.node.0.retransmits\"",
            "\"nic.node.0.packets_tx\"",
            "histogram",
            "summary",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn csv_and_summary_render() {
        let tel = Telemetry::with_trace(16);
        tel.counter("fabric.injected").add(2);
        tel.record(ev(42, TraceKind::PacketInjected, 0, 1));
        let csv = export::trace_to_csv(&tel);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("42,ft,injected,0,0,1,0,1,0"));
        let mcsv = export::metrics_to_csv(&tel.snapshot());
        assert!(mcsv.contains("fabric.injected,counter,2"));
        let summary = tel.summary_text();
        assert!(summary.contains("injected=2"));
        assert!(summary.contains("1 events recorded"));
    }
}
