//! # san-svm — GeNIMA-like shared virtual memory over VMMC
//!
//! The paper's application experiments (§6.1.4) run SPLASH-2 programs on the
//! GeNIMA shared-virtual-memory protocol, which exploits NIC support to
//! eliminate asynchronous protocol processing. This crate reproduces that
//! substrate as a home-based SVM:
//!
//! * shared pages (4 KB) with static homes (`page % nodes`); per-node
//!   validity bits and dirty sets,
//! * page fetches served by the home's NIC-level deposit path (a request
//!   message out, a 4 KB direct deposit back) — **Data time**,
//! * home-based queue locks whose grants carry the previous holder's write
//!   notices (pages to invalidate) — **Lock time**,
//! * a centralized barrier manager that gathers write notices and broadcasts
//!   invalidations with the release; dirty pages are flushed to their homes
//!   before arrival — **Barrier time**,
//! * everything else is **Compute + Handler time** — matching the four bars
//!   of Figure 9.
//!
//! Application *data* lives in shared heaps (`Arc<Mutex<…>>`) accessed
//! directly by the process coroutines; the SVM protocol carries the
//! *timing and ordering* of coherence (fetches, flushes and invalidations
//! move logical 4 KB payloads through the full simulated stack). Processes
//! declare their accesses (`read(page)` / `write(page)`) exactly where a
//! page fault would occur. This is the standard SVM-simulation split: data
//! correctness is guaranteed by protocol ordering, which the application
//! results then validate against sequential references.

pub mod msg;
pub mod node;
pub mod runner;

pub use msg::SvmMsg;
pub use node::{SvmNode, SvmReq, SvmResp, PAGE_BYTES};
pub use runner::{run_svm, ProcBody, SvmConfig, SvmReport, TimeBreakdown};

/// Shorthand for the coroutine IO type SVM processes use.
pub type SvmIo = san_proc::ProcIo<SvmReq, SvmResp>;

/// Convenience wrapper giving application code readable SVM calls.
pub struct Svm<'a> {
    io: &'a mut SvmIo,
}

impl<'a> Svm<'a> {
    /// Wrap a coroutine's IO handle.
    pub fn new(io: &'a mut SvmIo) -> Self {
        Self { io }
    }

    /// Spend `d` of CPU time.
    pub fn compute(&mut self, d: san_sim::Duration) {
        self.io.compute(d);
    }

    /// Declare a read of `page` (fetches it if not locally valid).
    pub fn read(&mut self, page: u32) {
        self.io.request(SvmReq::Read(page));
    }

    /// Declare a write to `page` (fetches if needed, marks dirty).
    pub fn write(&mut self, page: u32) {
        self.io.request(SvmReq::Write(page));
    }

    /// Declare reads over an inclusive page range.
    pub fn read_range(&mut self, first: u32, last: u32) {
        for p in first..=last {
            self.read(p);
        }
    }

    /// Declare writes over an inclusive page range.
    pub fn write_range(&mut self, first: u32, last: u32) {
        for p in first..=last {
            self.write(p);
        }
    }

    /// Acquire a global lock.
    pub fn acquire(&mut self, lock: u32) {
        self.io.request(SvmReq::Acquire(lock));
    }

    /// Release a global lock (flushes this node's writes under it).
    pub fn release(&mut self, lock: u32) {
        self.io.request(SvmReq::Release(lock));
    }

    /// Enter the global barrier.
    pub fn barrier(&mut self) {
        self.io.request(SvmReq::Barrier);
    }

    /// Current simulated time.
    pub fn now(&self) -> san_sim::Time {
        self.io.now()
    }
}

/// Map a flat element index to its page, for `bytes_per_elem`-sized data
/// starting at `base_page`.
#[inline]
pub fn page_of(base_page: u32, index: usize, bytes_per_elem: usize) -> u32 {
    base_page + (index * bytes_per_elem / PAGE_BYTES as usize) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_maps_by_bytes() {
        // 512 f64s per 4 KB page.
        assert_eq!(page_of(0, 0, 8), 0);
        assert_eq!(page_of(0, 511, 8), 0);
        assert_eq!(page_of(0, 512, 8), 1);
        assert_eq!(page_of(10, 1024, 8), 12);
        // u32 keys: 1024 per page.
        assert_eq!(page_of(0, 1023, 4), 0);
        assert_eq!(page_of(0, 1024, 4), 1);
    }
}
