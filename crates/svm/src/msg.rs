//! SVM protocol wire messages and their compact byte codec.
//!
//! Control messages travel as real bytes inside VMMC deposits (so the codec
//! is genuinely exercised end-to-end, CRC and all); bulk page payloads are
//! carried as logical length on the same message (padding), which is what
//! drives the simulated wire/DMA costs.

use bytes::{BufMut, Bytes, BytesMut};

/// One SVM protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvmMsg {
    /// Ask `page`'s home for its current contents.
    PageReq {
        /// The page.
        page: u32,
        /// Global id of the process stalled on it (echoed in the reply).
        pid: u32,
    },
    /// Home's reply; carries a logical 4 KB payload.
    PageReply {
        /// The page.
        page: u32,
        /// Stalled process to resume.
        pid: u32,
    },
    /// Write back a dirty page to its home; carries logical 4 KB.
    Flush {
        /// The page.
        page: u32,
        /// Flush sequence token for matching the ack.
        token: u32,
    },
    /// Home confirms a flush landed.
    FlushAck {
        /// Echoed token.
        token: u32,
    },
    /// Ask the lock's home for ownership.
    LockReq {
        /// The lock.
        lock: u32,
        /// Requesting process (global id).
        pid: u32,
    },
    /// Ownership granted; invalidate these pages first (write notices of
    /// the previous holder).
    LockGrant {
        /// The lock.
        lock: u32,
        /// Process to resume.
        pid: u32,
        /// Pages to invalidate.
        invalidate: Vec<u32>,
    },
    /// Give the lock back to its home, with this interval's write notices.
    LockRelease {
        /// The lock.
        lock: u32,
        /// Pages dirtied under the lock.
        dirty: Vec<u32>,
    },
    /// A process reached the barrier; carries its node's write notices.
    BarrierArrive {
        /// Barrier episode number.
        episode: u32,
        /// Arriving process (global id).
        pid: u32,
        /// Pages the arriving node dirtied this interval.
        dirty: Vec<u32>,
    },
    /// The manager releases the barrier; invalidate these pages.
    BarrierRelease {
        /// Barrier episode number.
        episode: u32,
        /// Union of all write notices from other nodes.
        invalidate: Vec<u32>,
    },
}

const T_PAGE_REQ: u8 = 1;
const T_PAGE_REPLY: u8 = 2;
const T_FLUSH: u8 = 3;
const T_FLUSH_ACK: u8 = 4;
const T_LOCK_REQ: u8 = 5;
const T_LOCK_GRANT: u8 = 6;
const T_LOCK_RELEASE: u8 = 7;
const T_BAR_ARRIVE: u8 = 8;
const T_BAR_RELEASE: u8 = 9;

fn put_list(b: &mut BytesMut, xs: &[u32]) {
    b.put_u32_le(xs.len() as u32);
    for &x in xs {
        b.put_u32_le(x);
    }
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let v = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(v.try_into().unwrap()))
}

fn get_list(buf: &[u8], at: &mut usize) -> Option<Vec<u32>> {
    let n = get_u32(buf, at)? as usize;
    if n > 1_000_000 {
        return None; // corrupt length
    }
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(get_u32(buf, at)?);
    }
    Some(xs)
}

impl SvmMsg {
    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32);
        match self {
            SvmMsg::PageReq { page, pid } => {
                b.put_u8(T_PAGE_REQ);
                b.put_u32_le(*page);
                b.put_u32_le(*pid);
            }
            SvmMsg::PageReply { page, pid } => {
                b.put_u8(T_PAGE_REPLY);
                b.put_u32_le(*page);
                b.put_u32_le(*pid);
            }
            SvmMsg::Flush { page, token } => {
                b.put_u8(T_FLUSH);
                b.put_u32_le(*page);
                b.put_u32_le(*token);
            }
            SvmMsg::FlushAck { token } => {
                b.put_u8(T_FLUSH_ACK);
                b.put_u32_le(*token);
            }
            SvmMsg::LockReq { lock, pid } => {
                b.put_u8(T_LOCK_REQ);
                b.put_u32_le(*lock);
                b.put_u32_le(*pid);
            }
            SvmMsg::LockGrant {
                lock,
                pid,
                invalidate,
            } => {
                b.put_u8(T_LOCK_GRANT);
                b.put_u32_le(*lock);
                b.put_u32_le(*pid);
                put_list(&mut b, invalidate);
            }
            SvmMsg::LockRelease { lock, dirty } => {
                b.put_u8(T_LOCK_RELEASE);
                b.put_u32_le(*lock);
                put_list(&mut b, dirty);
            }
            SvmMsg::BarrierArrive {
                episode,
                pid,
                dirty,
            } => {
                b.put_u8(T_BAR_ARRIVE);
                b.put_u32_le(*episode);
                b.put_u32_le(*pid);
                put_list(&mut b, dirty);
            }
            SvmMsg::BarrierRelease {
                episode,
                invalidate,
            } => {
                b.put_u8(T_BAR_RELEASE);
                b.put_u32_le(*episode);
                put_list(&mut b, invalidate);
            }
        }
        b.freeze()
    }

    /// Parse from wire bytes. Returns `None` on any malformation.
    pub fn decode(buf: &[u8]) -> Option<SvmMsg> {
        let tag = *buf.first()?;
        let mut at = 1usize;
        let msg = match tag {
            T_PAGE_REQ => SvmMsg::PageReq {
                page: get_u32(buf, &mut at)?,
                pid: get_u32(buf, &mut at)?,
            },
            T_PAGE_REPLY => SvmMsg::PageReply {
                page: get_u32(buf, &mut at)?,
                pid: get_u32(buf, &mut at)?,
            },
            T_FLUSH => SvmMsg::Flush {
                page: get_u32(buf, &mut at)?,
                token: get_u32(buf, &mut at)?,
            },
            T_FLUSH_ACK => SvmMsg::FlushAck {
                token: get_u32(buf, &mut at)?,
            },
            T_LOCK_REQ => SvmMsg::LockReq {
                lock: get_u32(buf, &mut at)?,
                pid: get_u32(buf, &mut at)?,
            },
            T_LOCK_GRANT => SvmMsg::LockGrant {
                lock: get_u32(buf, &mut at)?,
                pid: get_u32(buf, &mut at)?,
                invalidate: get_list(buf, &mut at)?,
            },
            T_LOCK_RELEASE => SvmMsg::LockRelease {
                lock: get_u32(buf, &mut at)?,
                dirty: get_list(buf, &mut at)?,
            },
            T_BAR_ARRIVE => SvmMsg::BarrierArrive {
                episode: get_u32(buf, &mut at)?,
                pid: get_u32(buf, &mut at)?,
                dirty: get_list(buf, &mut at)?,
            },
            T_BAR_RELEASE => SvmMsg::BarrierRelease {
                episode: get_u32(buf, &mut at)?,
                invalidate: get_list(buf, &mut at)?,
            },
            _ => return None,
        };
        Some(msg)
    }

    /// Logical payload bytes this message carries beyond its header (bulk
    /// page data).
    pub fn bulk_bytes(&self) -> u32 {
        match self {
            SvmMsg::PageReply { .. } | SvmMsg::Flush { .. } => crate::node::PAGE_BYTES,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: SvmMsg) {
        let enc = m.encode();
        let dec = SvmMsg::decode(&enc).expect("decodes");
        assert_eq!(dec, m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(SvmMsg::PageReq { page: 42, pid: 3 });
        roundtrip(SvmMsg::PageReply { page: 42, pid: 3 });
        roundtrip(SvmMsg::Flush { page: 7, token: 99 });
        roundtrip(SvmMsg::FlushAck { token: 99 });
        roundtrip(SvmMsg::LockReq { lock: 1, pid: 6 });
        roundtrip(SvmMsg::LockGrant {
            lock: 1,
            pid: 6,
            invalidate: vec![1, 2, 3],
        });
        roundtrip(SvmMsg::LockRelease {
            lock: 1,
            dirty: vec![],
        });
        roundtrip(SvmMsg::BarrierArrive {
            episode: 5,
            pid: 0,
            dirty: vec![9, 10],
        });
        roundtrip(SvmMsg::BarrierRelease {
            episode: 5,
            invalidate: (0..100).collect(),
        });
    }

    #[test]
    fn garbage_rejected() {
        assert!(SvmMsg::decode(&[]).is_none());
        assert!(SvmMsg::decode(&[0xFF, 1, 2, 3]).is_none());
        assert!(SvmMsg::decode(&[T_LOCK_GRANT, 1]).is_none(), "truncated");
        // Absurd list length rejected rather than allocating.
        let mut b = BytesMut::new();
        b.put_u8(T_LOCK_RELEASE);
        b.put_u32_le(1);
        b.put_u32_le(u32::MAX);
        assert!(SvmMsg::decode(&b).is_none());
    }

    #[test]
    fn bulk_sizes() {
        assert_eq!(SvmMsg::PageReply { page: 0, pid: 0 }.bulk_bytes(), 4096);
        assert_eq!(SvmMsg::Flush { page: 0, token: 0 }.bulk_bytes(), 4096);
        assert_eq!(SvmMsg::FlushAck { token: 0 }.bulk_bytes(), 0);
        assert_eq!(SvmMsg::LockReq { lock: 0, pid: 0 }.bulk_bytes(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes never panics (it may legitimately parse).
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = SvmMsg::decode(&data);
        }

        /// Round-trip for arbitrary barrier messages.
        #[test]
        fn barrier_roundtrip(episode in any::<u32>(), pid in any::<u32>(),
                             dirty in proptest::collection::vec(any::<u32>(), 0..64)) {
            let m = SvmMsg::BarrierArrive { episode, pid, dirty };
            prop_assert_eq!(SvmMsg::decode(&m.encode()), Some(m));
        }
    }
}
