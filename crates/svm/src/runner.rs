//! Build-and-run harness for SVM applications: assembles the cluster
//! (star topology, reliable or baseline firmware), spawns the process
//! coroutines, runs to completion, and reports the paper's execution-time
//! breakdown.

use std::cell::RefCell;
use std::rc::Rc;

use san_fabric::engine::FabricEvent;
use san_fabric::{topology, Endpoint, NodeId};
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::{Cluster, ClusterConfig, HostAgent, UnreliableFirmware};
use san_sim::{Duration, Time};

use crate::node::{SvmNode, SvmShared};
use crate::SvmIo;

/// The four bars of Figure 9, per process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Compute + handler time.
    pub compute: Duration,
    /// Data (page fetch) stall time.
    pub data: Duration,
    /// Lock stall time.
    pub lock: Duration,
    /// Barrier stall time.
    pub barrier: Duration,
}

impl TimeBreakdown {
    /// Sum of all buckets.
    pub fn total(&self) -> Duration {
        self.compute + self.data + self.lock + self.barrier
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &TimeBreakdown) {
        self.compute += other.compute;
        self.data += other.data;
        self.lock += other.lock;
        self.barrier += other.barrier;
    }
}

/// One process's program.
pub type ProcBody = Box<dyn FnOnce(&mut SvmIo) + Send>;

/// A host-uplink outage injected into the run: node `node`'s link to the
/// switch goes down at `down` and comes back at `up`.
#[derive(Debug, Clone, Copy)]
pub struct LinkFlap {
    /// Which node's uplink to flap.
    pub node: usize,
    /// When the link dies.
    pub down: Time,
    /// When it is repaired.
    pub up: Time,
}

/// SVM run configuration.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Cluster nodes (the paper: 4).
    pub nodes: usize,
    /// Processes per node (the paper: 2).
    pub procs_per_node: usize,
    /// Shared pages.
    pub pages: u32,
    /// NIC/cluster parameters (send buffers, timing, seed).
    pub cluster: ClusterConfig,
    /// Reliability protocol; `None` runs the no-fault-tolerance firmware.
    pub proto: Option<ProtocolConfig>,
    /// Host-level end-to-end recovery policy for `SendFailed` completions;
    /// `None` keeps the paper's silent-drop baseline.
    pub recovery: Option<san_vmmc::RecoveryConfig>,
    /// Host-uplink outages to inject during the run.
    pub flaps: Vec<LinkFlap>,
    /// Give up after this much simulated time.
    pub deadline: Time,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            procs_per_node: 2,
            pages: 1024,
            cluster: ClusterConfig::default(),
            proto: Some(ProtocolConfig::default()),
            recovery: None,
            flaps: Vec::new(),
            deadline: Time::from_secs(300),
        }
    }
}

/// What a finished run reports.
#[derive(Debug, Clone)]
pub struct SvmReport {
    /// Per-process breakdowns (indexed by global pid).
    pub breakdowns: Vec<TimeBreakdown>,
    /// Wall (virtual) time until the last process finished.
    pub wall: Duration,
    /// All processes finished before the deadline.
    pub completed: bool,
    /// Total packets retransmitted across the cluster.
    pub retransmits: u64,
    /// Packets suppressed by the error injector.
    pub injected_drops: u64,
    /// Data packets put on the wire.
    pub packets_tx: u64,
}

impl SvmReport {
    /// Bucket sums over all processes (the figure's bar heights).
    pub fn aggregate(&self) -> TimeBreakdown {
        let mut t = TimeBreakdown::default();
        for b in &self.breakdowns {
            t.add(b);
        }
        t
    }
}

/// Run `bodies` (one per process, grouped round-robin by node:
/// pid = node * procs_per_node + local) on a simulated SVM cluster.
///
/// # Panics
/// Panics if `bodies.len() != nodes * procs_per_node`.
pub fn run_svm(cfg: SvmConfig, bodies: Vec<ProcBody>) -> SvmReport {
    let total = cfg.nodes * cfg.procs_per_node;
    assert_eq!(bodies.len(), total, "one body per process");
    let (topo, _hosts) = topology::star(cfg.nodes);
    let flap_links: Vec<_> = cfg
        .flaps
        .iter()
        .map(|f| {
            let link = topo
                .link_at(Endpoint::Host(NodeId(f.node as u16)))
                .expect("flapped node has an uplink");
            (*f, link)
        })
        .collect();
    let shared = Rc::new(RefCell::new(SvmShared::default()));

    let mut bodies: Vec<Option<ProcBody>> = bodies.into_iter().map(Some).collect();
    let telemetry = cfg.cluster.telemetry.clone();
    let hosts: Vec<Box<dyn HostAgent>> = (0..cfg.nodes)
        .map(|n| {
            let node_bodies: Vec<ProcBody> = (0..cfg.procs_per_node)
                .map(|i| bodies[n * cfg.procs_per_node + i].take().unwrap())
                .collect();
            Box::new(SvmNode::new(
                NodeId(n as u16),
                cfg.nodes,
                cfg.procs_per_node,
                cfg.pages,
                node_bodies,
                shared.clone(),
                &telemetry,
                cfg.recovery.clone(),
            )) as Box<dyn HostAgent>
        })
        .collect();

    let proto = cfg.proto.clone();
    let nodes = cfg.nodes;
    let mut cluster = Cluster::new(
        topo,
        cfg.cluster,
        |_| match &proto {
            Some(p) => Box::new(ReliableFirmware::new(
                p.clone(),
                MapperConfig::default(),
                nodes,
            )),
            None => Box::new(UnreliableFirmware),
        },
        hosts,
    );
    cluster.install_shortest_routes();
    for (f, link) in flap_links {
        cluster
            .sim
            .schedule(f.down, FabricEvent::LinkDown { link }.into());
        cluster
            .sim
            .schedule(f.up, FabricEvent::LinkUp { link }.into());
    }

    // Run in slices until every process finished (the periodic retransmission
    // timer keeps the queue non-empty forever, so we cannot run to idle).
    let slice = Duration::from_millis(5);
    let mut t = Time::ZERO + slice;
    let completed = loop {
        cluster.run_until(t);
        if shared.borrow().finished == total {
            break true;
        }
        if t > cfg.deadline {
            break false;
        }
        if cluster.sim.is_idle() && shared.borrow().finished < total {
            // No pending events and unfinished processes: deadlock (only
            // possible with the unreliable firmware after a loss).
            break false;
        }
        t += slice;
    };

    let sh = shared.borrow();
    let wall = sh
        .finish_times
        .values()
        .copied()
        .max()
        .unwrap_or(Time::ZERO)
        .since(Time::ZERO);
    let breakdowns: Vec<TimeBreakdown> = (0..total as u32)
        .map(|pid| sh.breakdowns.get(&pid).copied().unwrap_or_default())
        .collect();
    let retransmits = cluster
        .nics
        .iter()
        .map(|n| n.core.stats.retransmits.get())
        .sum();
    let injected_drops = cluster
        .nics
        .iter()
        .map(|n| n.core.stats.injected_drops.get())
        .sum();
    let packets_tx = cluster
        .nics
        .iter()
        .map(|n| n.core.stats.packets_tx.get())
        .sum();
    SvmReport {
        breakdowns,
        wall,
        completed,
        retransmits,
        injected_drops,
        packets_tx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Svm;

    /// Two procs increment a shared counter under a lock; barrier at the end.
    #[test]
    fn lock_protected_counter_is_exact() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let counter = Arc::new(AtomicU64::new(0));
        let total = 8;
        let bodies: Vec<ProcBody> = (0..total)
            .map(|_| {
                let c = counter.clone();
                Box::new(move |io: &mut SvmIo| {
                    let mut svm = Svm::new(io);
                    for _ in 0..10 {
                        svm.acquire(0);
                        svm.write(0);
                        // Critical section: read-modify-write on real data.
                        let v = c.load(Ordering::Relaxed);
                        svm.compute(Duration::from_micros(2));
                        c.store(v + 1, Ordering::Relaxed);
                        svm.release(0);
                    }
                    svm.barrier();
                }) as ProcBody
            })
            .collect();
        let report = run_svm(SvmConfig::default(), bodies);
        assert!(report.completed, "all processes must finish");
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            80,
            "mutual exclusion"
        );
        let agg = report.aggregate();
        assert!(
            agg.lock > Duration::ZERO,
            "lock contention must show up in the lock bucket"
        );
        assert!(agg.compute >= Duration::from_micros(2 * 80));
    }

    /// Barrier actually synchronizes: nobody passes episode k before all
    /// arrived.
    #[test]
    fn barrier_synchronizes_epochs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let phase_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..5).map(|_| AtomicU64::new(0)).collect());
        let total = 8usize;
        let bodies: Vec<ProcBody> = (0..total)
            .map(|pid| {
                let pc = phase_counts.clone();
                Box::new(move |io: &mut SvmIo| {
                    let mut svm = Svm::new(io);
                    for phase in 0..5 {
                        // Unequal compute so arrival order varies.
                        svm.compute(Duration::from_micros(3 + (pid as u64 * 7) % 20));
                        let before = pc[phase].fetch_add(1, Ordering::Relaxed);
                        assert!(before < total as u64, "phase overshoot");
                        svm.barrier();
                        // After the barrier, everyone must have counted.
                        assert_eq!(
                            pc[phase].load(Ordering::Relaxed),
                            total as u64,
                            "crossed barrier before all arrived"
                        );
                    }
                }) as ProcBody
            })
            .collect();
        let report = run_svm(SvmConfig::default(), bodies);
        assert!(report.completed);
        let agg = report.aggregate();
        assert!(agg.barrier > Duration::ZERO);
    }

    /// Page fetches cost Data time and only on first touch / after
    /// invalidation.
    #[test]
    fn page_fetch_accounting() {
        let bodies: Vec<ProcBody> = (0..8)
            .map(|pid| {
                Box::new(move |io: &mut SvmIo| {
                    let mut svm = Svm::new(io);
                    // Pages 0,4,8,... are homed on node 0 (page % nodes).
                    if pid == 0 {
                        // Writer dirties 16 locally-homed pages: no fetches.
                        for p in 0..16 {
                            svm.write(p * 4);
                        }
                        svm.barrier();
                        svm.barrier();
                    } else {
                        svm.barrier();
                        // Everyone reads the writer's pages.
                        for p in 0..16 {
                            svm.read(p * 4);
                        }
                        // Re-reads are free (still valid).
                        for p in 0..16 {
                            svm.read(p * 4);
                        }
                        svm.barrier();
                    }
                }) as ProcBody
            })
            .collect();
        let report = run_svm(SvmConfig::default(), bodies);
        assert!(report.completed);
        // Readers on nodes 1..3 must have paid data time; the writer none.
        assert_eq!(
            report.breakdowns[0].data,
            Duration::ZERO,
            "writer never fetches"
        );
        let reader_data: Duration = report.breakdowns[2..]
            .iter()
            .map(|b| b.data)
            .fold(Duration::ZERO, |a, d| a + d);
        assert!(reader_data > Duration::ZERO, "remote readers fetch pages");
    }

    /// The same program with injected errors completes with identical
    /// results, only slower — the fault-tolerance guarantee end to end.
    #[test]
    fn svm_survives_injected_errors() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let run = |error_rate: f64| -> (bool, u64, Duration) {
            let counter = Arc::new(AtomicU64::new(0));
            let bodies: Vec<ProcBody> = (0..8)
                .map(|_| {
                    let c = counter.clone();
                    Box::new(move |io: &mut SvmIo| {
                        let mut svm = Svm::new(io);
                        for i in 0..6 {
                            svm.acquire(1);
                            svm.write(i % 8);
                            let v = c.load(Ordering::Relaxed);
                            svm.compute(Duration::from_micros(1));
                            c.store(v + 1, Ordering::Relaxed);
                            svm.release(1);
                            svm.barrier();
                        }
                    }) as ProcBody
                })
                .collect();
            let cfg = SvmConfig {
                proto: Some(ProtocolConfig::default().with_error_rate(error_rate)),
                ..SvmConfig::default()
            };
            let report = run_svm(cfg, bodies);
            (
                report.completed,
                counter.load(Ordering::Relaxed),
                report.wall,
            )
        };
        let (ok0, count0, wall0) = run(0.0);
        let (ok1, count1, wall1) = run(1.0 / 50.0);
        assert!(ok0 && ok1, "both runs complete");
        assert_eq!(count0, 48);
        assert_eq!(count1, 48, "errors must not change results");
        assert!(wall1 > wall0, "errors cost time: {wall1} vs {wall0}");
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use crate::Svm;
    use std::sync::{Arc, Mutex as StdMutex};

    /// The home-based lock grants strictly in request-arrival order: with
    /// well-separated staggered requests, the critical-section entry order
    /// equals the request order (FIFO, no starvation or barging).
    #[test]
    fn locks_grant_in_request_order() {
        let order = Arc::new(StdMutex::new(Vec::<u32>::new()));
        let total = 8u32;
        let bodies: Vec<ProcBody> = (0..total)
            .map(|pid| {
                let ord = order.clone();
                Box::new(move |io: &mut crate::SvmIo| {
                    let mut svm = Svm::new(io);
                    // Stagger arrivals by well over the grant latency.
                    svm.compute(Duration::from_micros(200 * (pid as u64 + 1)));
                    svm.acquire(3);
                    ord.lock().unwrap().push(pid);
                    // Hold long enough that everyone queues behind.
                    svm.compute(Duration::from_micros(400));
                    svm.release(3);
                }) as ProcBody
            })
            .collect();
        let report = run_svm(SvmConfig::default(), bodies);
        assert!(report.completed);
        let got = order.lock().unwrap().clone();
        assert_eq!(got, (0..total).collect::<Vec<_>>(), "FIFO grant order");
    }

    /// Two independent locks on different home nodes do not serialize each
    /// other: disjoint critical sections overlap in virtual time.
    #[test]
    fn independent_locks_run_concurrently() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let span0 = Arc::new((AtomicU64::new(u64::MAX), AtomicU64::new(0)));
        let span1 = Arc::new((AtomicU64::new(u64::MAX), AtomicU64::new(0)));
        let bodies: Vec<ProcBody> = (0..8)
            .map(|pid| {
                let (s0, s1) = (span0.clone(), span1.clone());
                Box::new(move |io: &mut crate::SvmIo| {
                    let mut svm = Svm::new(io);
                    let (lock, span) = if pid % 2 == 0 {
                        (10u32, s0)
                    } else {
                        (11u32, s1)
                    };
                    for _ in 0..5 {
                        svm.acquire(lock);
                        let t0 = svm.now().nanos();
                        svm.compute(Duration::from_micros(50));
                        let t1 = svm.now().nanos();
                        span.0.fetch_min(t0, Ordering::Relaxed);
                        span.1.fetch_max(t1, Ordering::Relaxed);
                        svm.release(lock);
                    }
                }) as ProcBody
            })
            .collect();
        let report = run_svm(SvmConfig::default(), bodies);
        assert!(report.completed);
        // The two lock groups each spent 4 procs × 5 × 50 µs = 1 ms of
        // critical-section time. If they serialized against each other the
        // spans would not overlap; concurrent groups must overlap heavily.
        let (a0, a1) = (
            span0.0.load(std::sync::atomic::Ordering::Relaxed),
            span0.1.load(std::sync::atomic::Ordering::Relaxed),
        );
        let (b0, b1) = (
            span1.0.load(std::sync::atomic::Ordering::Relaxed),
            span1.1.load(std::sync::atomic::Ordering::Relaxed),
        );
        let overlap = a1.min(b1).saturating_sub(a0.max(b0));
        assert!(
            overlap > 500_000,
            "independent locks must overlap ≥0.5ms: [{a0},{a1}] vs [{b0},{b1}]"
        );
    }

    /// End-to-end host recovery: an uplink outage long enough to exhaust the
    /// NIC's remap-retry budget drops SVM protocol messages with a
    /// `SendFailed` completion. Without a recovery policy the application
    /// deadlocks (the paper's silent drop); with one, the host re-posts the
    /// failed message after the repair and the run completes exactly.
    #[test]
    fn host_recovery_survives_remap_budget_exhaustion() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let run = |recovery: Option<san_vmmc::RecoveryConfig>| {
            let counter = Arc::new(AtomicU64::new(0));
            let bodies: Vec<ProcBody> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    Box::new(move |io: &mut SvmIo| {
                        let mut svm = Svm::new(io);
                        for _ in 0..20 {
                            svm.acquire(0);
                            svm.write(0);
                            let v = c.load(Ordering::Relaxed);
                            svm.compute(Duration::from_millis(10));
                            c.store(v + 1, Ordering::Relaxed);
                            svm.release(0);
                        }
                        svm.barrier();
                    }) as ProcBody
                })
                .collect();
            let cfg = SvmConfig {
                nodes: 2,
                procs_per_node: 1,
                proto: Some(ProtocolConfig {
                    perm_fail_threshold: Duration::from_millis(2),
                    ..ProtocolConfig::default().with_mapping()
                }),
                recovery,
                // Node 1 unreachable from 2 ms to 400 ms: every sender's
                // remap-retry budget (~145 ms per cycle) exhausts
                // mid-outage, so in-flight lock traffic is dropped with a
                // SendFailed completion on both sides of the dead link.
                flaps: vec![LinkFlap {
                    node: 1,
                    down: Time::from_millis(2),
                    up: Time::from_millis(400),
                }],
                deadline: Time::from_secs(5),
                ..SvmConfig::default()
            };
            let report = run_svm(cfg, bodies);
            (report.completed, counter.load(Ordering::Relaxed))
        };

        let (completed, _) = run(None);
        assert!(
            !completed,
            "without host recovery the dropped lock message must deadlock the run"
        );
        let (completed, count) = run(Some(san_vmmc::RecoveryConfig::default()));
        assert!(completed, "host recovery must re-post and finish the run");
        assert_eq!(count, 40, "mutual exclusion preserved across recovery");
    }
}
