//! The per-node SVM agent: drives its process coroutines, serves the pages
//! and locks homed on it, and participates in the global barrier.
//!
//! All collections iterated during protocol actions are ordered (`BTreeSet`
//! / `BTreeMap`) — HashMap iteration order would leak randomness into the
//! simulation and break reproducibility.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use san_fabric::{NodeId, Packet};
use san_nic::{HostAgent, HostCtx};
use san_proc::{Coroutine, Step};
use san_sim::Time;
use san_vmmc::{ExportId, ImportHandle, VmmcLib};

use crate::msg::SvmMsg;
use crate::runner::TimeBreakdown;

/// Shared page size (and VMMC segment size).
pub const PAGE_BYTES: u32 = 4096;
/// Per-source slot inside every node's control export.
pub const CTRL_SLOT: u32 = 64 * 1024;
/// Wake token reserved for end-to-end retry pacing (process wake tokens are
/// local indices, far below this).
const RETRY_TOKEN: u64 = 1 << 32;

/// Requests an application process can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmReq {
    /// Ensure `page` is locally readable.
    Read(u32),
    /// Ensure `page` is locally writable and mark it dirty.
    Write(u32),
    /// Acquire a global lock.
    Acquire(u32),
    /// Release a global lock (flushes writes).
    Release(u32),
    /// Enter the global barrier.
    Barrier,
}

/// Response to any request (all requests are completion-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvmResp;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Park {
    Compute,
    Data,
    Lock,
    Barrier,
}

#[derive(Debug, Clone, PartialEq)]
enum AfterFlush {
    Release(u32),
    Barrier,
}

enum ProcState {
    Running,
    Parked { kind: Park, since: Time },
    Finished,
}

struct ProcSlot {
    co: Coroutine<SvmReq, SvmResp>,
    state: ProcState,
    buckets: TimeBreakdown,
    /// Pages this process dirtied since its last flush point. Per-process,
    /// not per-node: a flush at one process's sync point must not steal
    /// pages another local process is still writing under a lock.
    dirty: BTreeSet<u32>,
    outstanding_flush: u32,
    after_flush: Option<AfterFlush>,
    flush_notices: Vec<u32>,
    finish_time: Time,
}

#[derive(Debug, Default)]
struct LockHome {
    held: bool,
    queue: VecDeque<u32>, // global pids
    last_notices: Vec<u32>,
    last_releaser: Option<u16>, // node id
}

#[derive(Debug, Default)]
struct BarrierMgr {
    episode: u32,
    arrived: Vec<u32>,
    notices: BTreeMap<u16, BTreeSet<u32>>, // node -> dirty pages
}

/// Results shared between the agents and the runner.
#[derive(Debug, Default)]
pub struct SvmShared {
    /// Processes that have finished.
    pub finished: usize,
    /// Per-process breakdowns, keyed by global pid.
    pub breakdowns: BTreeMap<u32, TimeBreakdown>,
    /// Finish time per process.
    pub finish_times: BTreeMap<u32, Time>,
}

/// Registered `svm.node.<n>.*` cells: stall distributions per park kind
/// and completed-wait counts (Figure 9's buckets, observable live).
#[derive(Debug)]
struct SvmMetrics {
    lock_wait: san_telemetry::HistogramHandle,
    data_wait: san_telemetry::HistogramHandle,
    barrier_wait: san_telemetry::HistogramHandle,
    lock_acquires: san_telemetry::Counter,
    page_fetches: san_telemetry::Counter,
    barriers: san_telemetry::Counter,
}

impl SvmMetrics {
    fn register(tel: &san_telemetry::Telemetry, node: NodeId) -> Self {
        let m = |leaf: &str| format!("svm.node.{}.{leaf}", node.0);
        Self {
            lock_wait: tel.histogram(&m("lock_wait_ns")),
            data_wait: tel.histogram(&m("data_wait_ns")),
            barrier_wait: tel.histogram(&m("barrier_wait_ns")),
            lock_acquires: tel.counter(&m("lock_acquires")),
            page_fetches: tel.counter(&m("page_fetches")),
            barriers: tel.counter(&m("barriers")),
        }
    }
}

/// The SVM host agent for one node.
pub struct SvmNode {
    node: NodeId,
    n_nodes: usize,
    procs_per_node: usize,
    total_procs: usize,
    n_pages: u32,
    vmmc: VmmcLib,
    metrics: SvmMetrics,
    ctrl: ExportId,
    procs: Vec<ProcSlot>,
    valid: BTreeSet<u32>,
    pending_pages: BTreeMap<u32, Vec<usize>>,
    lock_homes: BTreeMap<u32, LockHome>,
    flush_tokens: BTreeMap<u32, usize>,
    next_flush_token: u32,
    barrier_mgr: BarrierMgr,
    /// This node's view of which barrier episode comes next (client side).
    bar_episode: u32,
    barrier_parked: Vec<usize>,
    shared: Rc<RefCell<SvmShared>>,
}

impl SvmNode {
    /// Build the agent for `node`, spawning one coroutine per body.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        n_nodes: usize,
        procs_per_node: usize,
        n_pages: u32,
        bodies: Vec<crate::ProcBody>,
        shared: Rc<RefCell<SvmShared>>,
        telemetry: &san_telemetry::Telemetry,
        recovery: Option<san_vmmc::RecoveryConfig>,
    ) -> Self {
        assert_eq!(bodies.len(), procs_per_node);
        let procs = bodies
            .into_iter()
            .enumerate()
            .map(|(i, body)| ProcSlot {
                co: Coroutine::spawn(format!("svm-n{}p{}", node.0, i), body),
                state: ProcState::Running,
                buckets: TimeBreakdown::default(),
                dirty: BTreeSet::new(),
                outstanding_flush: 0,
                after_flush: None,
                flush_notices: Vec::new(),
                finish_time: Time::ZERO,
            })
            .collect();
        // Pages homed on this node start valid here.
        let valid: BTreeSet<u32> = (0..n_pages)
            .filter(|p| p % n_nodes as u32 == node.0 as u32)
            .collect();
        let mut vmmc = VmmcLib::with_telemetry(node, telemetry);
        if let Some(r) = recovery {
            vmmc.enable_recovery(r);
        }
        // Tag SVM protocol traffic per node (tenant 0 is reserved for
        // untagged traffic) so fabric-level attribution can separate nodes
        // when SVM runs alongside synthetic tenant workloads.
        vmmc.set_tenant(node.0 + 1);
        Self {
            node,
            n_nodes,
            procs_per_node,
            total_procs: n_nodes * procs_per_node,
            n_pages,
            vmmc,
            metrics: SvmMetrics::register(telemetry, node),
            ctrl: ExportId(0),
            procs,
            valid,
            pending_pages: BTreeMap::new(),
            lock_homes: BTreeMap::new(),
            flush_tokens: BTreeMap::new(),
            next_flush_token: 1,
            barrier_mgr: BarrierMgr::default(),
            bar_episode: 0,
            barrier_parked: Vec::new(),
            shared,
        }
    }

    #[inline]
    fn page_home(&self, page: u32) -> NodeId {
        NodeId((page % self.n_nodes as u32) as u16)
    }

    #[inline]
    fn lock_home_node(&self, lock: u32) -> NodeId {
        NodeId((lock % self.n_nodes as u32) as u16)
    }

    #[inline]
    fn global_pid(&self, local: usize) -> u32 {
        (self.node.0 as usize * self.procs_per_node + local) as u32
    }

    #[inline]
    fn local_of(&self, pid: u32) -> Option<usize> {
        let base = self.node.0 as u32 * self.procs_per_node as u32;
        (pid >= base && pid < base + self.procs_per_node as u32).then_some((pid - base) as usize)
    }

    fn import_of(&self, dst: NodeId) -> ImportHandle {
        VmmcLib::import(dst, ExportId(0), self.n_nodes as u32 * CTRL_SLOT)
    }

    /// Send a protocol message; self-addressed messages short-circuit.
    fn send_msg(&mut self, ctx: &mut HostCtx, dst: NodeId, msg: SvmMsg) {
        if dst == self.node {
            self.handle_msg(ctx, self.node, msg);
            return;
        }
        let slot = self.node.0 as u32 * CTRL_SLOT;
        let pad = msg.bulk_bytes();
        let to = self.import_of(dst);
        self.vmmc.send_padded(ctx, to, slot, msg.encode(), pad);
    }

    // -- process driving ----------------------------------------------------

    fn park(&mut self, local: usize, kind: Park, now: Time) {
        self.procs[local].state = ProcState::Parked { kind, since: now };
    }

    fn unpark_bucket(&mut self, local: usize, now: Time) {
        if let ProcState::Parked { kind, since } = self.procs[local].state {
            let d = now.since(since);
            let b = &mut self.procs[local].buckets;
            match kind {
                Park::Compute => b.compute += d,
                Park::Data => {
                    b.data += d;
                    self.metrics.data_wait.record(d);
                    self.metrics.page_fetches.hit();
                }
                Park::Lock => {
                    b.lock += d;
                    self.metrics.lock_wait.record(d);
                    self.metrics.lock_acquires.hit();
                }
                Park::Barrier => {
                    b.barrier += d;
                    self.metrics.barrier_wait.record(d);
                    self.metrics.barriers.hit();
                }
            }
        }
        self.procs[local].state = ProcState::Running;
    }

    /// Resume `local` (delivering a completion if it was in a request) and
    /// keep driving it until it parks on something asynchronous or ends.
    fn drive(&mut self, ctx: &mut HostCtx, local: usize, resp: Option<SvmResp>) {
        let now = ctx.now();
        self.unpark_bucket(local, now);
        let mut resp = resp;
        loop {
            if self.procs[local].co.finished() {
                self.finish(ctx, local);
                return;
            }
            let step = self.procs[local].co.resume(ctx.now(), resp.take());
            match step {
                Step::Done => {
                    self.finish(ctx, local);
                    return;
                }
                Step::Compute(d) => {
                    // Compute time is credited up front; `since` is set to
                    // the wake time so the unpark bucket adds nothing more.
                    self.procs[local].buckets.compute += d;
                    self.procs[local].state = ProcState::Parked {
                        kind: Park::Compute,
                        since: ctx.now() + d,
                    };
                    ctx.wake_in(d, local as u64);
                    return;
                }
                Step::Request(q) => {
                    if self.handle_request(ctx, local, q) {
                        // Completed synchronously: respond and continue.
                        resp = Some(SvmResp);
                    } else {
                        return; // parked; a later event resumes it
                    }
                }
            }
        }
    }

    fn finish(&mut self, ctx: &mut HostCtx, local: usize) {
        if matches!(self.procs[local].state, ProcState::Finished) {
            return;
        }
        self.procs[local].state = ProcState::Finished;
        self.procs[local].finish_time = ctx.now();
        let pid = self.global_pid(local);
        let mut sh = self.shared.borrow_mut();
        sh.finished += 1;
        sh.breakdowns.insert(pid, self.procs[local].buckets);
        sh.finish_times.insert(pid, ctx.now());
    }

    /// Returns true if the request completed synchronously.
    fn handle_request(&mut self, ctx: &mut HostCtx, local: usize, q: SvmReq) -> bool {
        let now = ctx.now();
        match q {
            SvmReq::Read(p) | SvmReq::Write(p) => {
                assert!(p < self.n_pages, "page {p} out of range");
                if matches!(q, SvmReq::Write(p2) if p2 == p) {
                    self.procs[local].dirty.insert(p);
                }
                if self.valid.contains(&p) || self.page_home(p) == self.node {
                    return true;
                }
                let first = !self.pending_pages.contains_key(&p);
                self.pending_pages.entry(p).or_default().push(local);
                if first {
                    let pid = self.global_pid(local);
                    self.send_msg(ctx, self.page_home(p), SvmMsg::PageReq { page: p, pid });
                }
                self.park(local, Park::Data, now);
                false
            }
            SvmReq::Acquire(l) => {
                let home = self.lock_home_node(l);
                let pid = self.global_pid(local);
                self.park(local, Park::Lock, now);
                self.send_msg(ctx, home, SvmMsg::LockReq { lock: l, pid });
                // Even a locally-homed free lock goes through handle_msg and
                // resumes the proc from there.
                false
            }
            SvmReq::Release(l) => {
                let dirty: Vec<u32> = self.procs[local].dirty.iter().copied().collect();
                self.procs[local].dirty.clear();
                self.procs[local].after_flush = Some(AfterFlush::Release(l));
                self.procs[local].flush_notices = dirty.clone();
                self.park(local, Park::Lock, now);
                self.start_flush(ctx, local, &dirty);
                false
            }
            SvmReq::Barrier => {
                let dirty: Vec<u32> = self.procs[local].dirty.iter().copied().collect();
                self.procs[local].dirty.clear();
                self.procs[local].after_flush = Some(AfterFlush::Barrier);
                self.procs[local].flush_notices = dirty.clone();
                self.park(local, Park::Barrier, now);
                self.start_flush(ctx, local, &dirty);
                false
            }
        }
    }

    /// Flush `pages` to their homes; completion continues with the parked
    /// proc's `after_flush` action. Locally-homed pages cost nothing (the
    /// home copy *is* this copy).
    fn start_flush(&mut self, ctx: &mut HostCtx, local: usize, pages: &[u32]) {
        let remote: Vec<u32> = pages
            .iter()
            .copied()
            .filter(|&p| self.page_home(p) != self.node)
            .collect();
        self.procs[local].outstanding_flush = remote.len() as u32;
        if remote.is_empty() {
            self.flush_done(ctx, local);
            return;
        }
        for p in remote {
            let token = self.next_flush_token;
            self.next_flush_token += 1;
            self.flush_tokens.insert(token, local);
            self.send_msg(ctx, self.page_home(p), SvmMsg::Flush { page: p, token });
        }
    }

    fn flush_done(&mut self, ctx: &mut HostCtx, local: usize) {
        let after = self.procs[local]
            .after_flush
            .take()
            .expect("flush without continuation");
        let notices = std::mem::take(&mut self.procs[local].flush_notices);
        match after {
            AfterFlush::Release(l) => {
                let home = self.lock_home_node(l);
                self.send_msg(
                    ctx,
                    home,
                    SvmMsg::LockRelease {
                        lock: l,
                        dirty: notices,
                    },
                );
                // Release is asynchronous: the releaser proceeds now.
                self.drive(ctx, local, Some(SvmResp));
            }
            AfterFlush::Barrier => {
                let pid = self.global_pid(local);
                let episode = self.bar_episode;
                self.barrier_parked.push(local);
                self.send_msg(
                    ctx,
                    NodeId(0),
                    SvmMsg::BarrierArrive {
                        episode,
                        pid,
                        dirty: notices,
                    },
                );
            }
        }
    }

    // -- protocol message handling -------------------------------------------

    fn handle_msg(&mut self, ctx: &mut HostCtx, src: NodeId, msg: SvmMsg) {
        match msg {
            SvmMsg::PageReq { page, pid } => {
                debug_assert_eq!(self.page_home(page), self.node);
                self.send_msg(ctx, src, SvmMsg::PageReply { page, pid });
            }
            SvmMsg::PageReply { page, .. } => {
                self.valid.insert(page);
                if let Some(waiters) = self.pending_pages.remove(&page) {
                    for local in waiters {
                        self.drive(ctx, local, Some(SvmResp));
                    }
                }
            }
            SvmMsg::Flush { token, .. } => {
                // The deposit itself carried the data; just confirm.
                self.send_msg(ctx, src, SvmMsg::FlushAck { token });
            }
            SvmMsg::FlushAck { token } => {
                let Some(local) = self.flush_tokens.remove(&token) else {
                    return;
                };
                let p = &mut self.procs[local];
                p.outstanding_flush = p.outstanding_flush.saturating_sub(1);
                if p.outstanding_flush == 0 {
                    self.flush_done(ctx, local);
                }
            }
            SvmMsg::LockReq { lock, pid } => {
                debug_assert_eq!(self.lock_home_node(lock), self.node);
                let granted = {
                    let h = self.lock_homes.entry(lock).or_default();
                    if h.held {
                        h.queue.push_back(pid);
                        false
                    } else {
                        h.held = true;
                        true
                    }
                };
                if granted {
                    self.grant_lock(ctx, lock, pid);
                }
            }
            SvmMsg::LockGrant {
                pid, invalidate, ..
            } => {
                for p in invalidate {
                    if self.page_home(p) != self.node {
                        self.valid.remove(&p);
                    }
                }
                let local = self.local_of(pid).expect("grant routed to wrong node");
                self.drive(ctx, local, Some(SvmResp));
            }
            SvmMsg::LockRelease { lock, dirty } => {
                debug_assert_eq!(self.lock_home_node(lock), self.node);
                let next = {
                    let h = self.lock_homes.entry(lock).or_default();
                    h.last_notices = dirty;
                    h.last_releaser = Some(src.0);
                    match h.queue.pop_front() {
                        Some(pid) => {
                            // Stays held; hand over.
                            Some(pid)
                        }
                        None => {
                            h.held = false;
                            None
                        }
                    }
                };
                if let Some(pid) = next {
                    self.grant_lock(ctx, lock, pid);
                }
            }
            SvmMsg::BarrierArrive {
                episode,
                pid,
                dirty,
            } => {
                debug_assert_eq!(self.node, NodeId(0), "barrier manager is node 0");
                debug_assert_eq!(episode, self.barrier_mgr.episode, "episode skew");
                let owner_node = (pid as usize / self.procs_per_node) as u16;
                self.barrier_mgr.arrived.push(pid);
                self.barrier_mgr
                    .notices
                    .entry(owner_node)
                    .or_default()
                    .extend(dirty);
                if self.barrier_mgr.arrived.len() == self.total_procs {
                    let mgr = std::mem::take(&mut self.barrier_mgr);
                    self.barrier_mgr.episode = mgr.episode + 1;
                    // Per destination node: invalidate everything others
                    // dirtied.
                    for n in 0..self.n_nodes as u16 {
                        let inval: Vec<u32> = mgr
                            .notices
                            .iter()
                            .filter(|(&from, _)| from != n)
                            .flat_map(|(_, pages)| pages.iter().copied())
                            .collect();
                        self.send_msg(
                            ctx,
                            NodeId(n),
                            SvmMsg::BarrierRelease {
                                episode: mgr.episode,
                                invalidate: inval,
                            },
                        );
                    }
                }
            }
            SvmMsg::BarrierRelease { invalidate, .. } => {
                self.bar_episode += 1;
                for p in invalidate {
                    if self.page_home(p) != self.node {
                        self.valid.remove(&p);
                    }
                }
                let parked = std::mem::take(&mut self.barrier_parked);
                for local in parked {
                    self.drive(ctx, local, Some(SvmResp));
                }
            }
        }
    }

    /// Home-side lock grant: route the grant (with the previous holder's
    /// notices) to the requester's node.
    fn grant_lock(&mut self, ctx: &mut HostCtx, lock: u32, pid: u32) {
        let (notices, releaser) = {
            let h = self.lock_homes.entry(lock).or_default();
            (h.last_notices.clone(), h.last_releaser)
        };
        let dst = NodeId((pid as usize / self.procs_per_node) as u16);
        // Don't tell a node to invalidate its own writes.
        let invalidate = if releaser == Some(dst.0) {
            Vec::new()
        } else {
            notices
        };
        self.send_msg(
            ctx,
            dst,
            SvmMsg::LockGrant {
                lock,
                pid,
                invalidate,
            },
        );
    }

    /// Access to VMMC statistics (for reports).
    pub fn vmmc_stats(&self) -> &san_vmmc::VmmcStats {
        &self.vmmc.stats
    }
}

impl HostAgent for SvmNode {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        let size = self.n_nodes as u32 * CTRL_SLOT;
        let e = self.vmmc.export(size, None);
        debug_assert_eq!(e, self.ctrl);
        for local in 0..self.procs_per_node {
            self.drive(ctx, local, None);
        }
    }

    fn on_wake(&mut self, ctx: &mut HostCtx, token: u64) {
        if token == RETRY_TOKEN {
            // End-to-end recovery pacing: re-post everything whose backoff
            // elapsed and re-arm for the next due retry.
            if let Some(next) = self.vmmc.flush_retries(ctx) {
                ctx.wake_in(next, RETRY_TOKEN);
            }
            return;
        }
        self.drive(ctx, token as usize, None);
    }

    fn on_message(&mut self, ctx: &mut HostCtx, pkt: Packet) {
        let Some(dm) = self.vmmc.on_packet(&pkt) else {
            return;
        };
        let take = dm.len.min(CTRL_SLOT);
        let bytes: Vec<u8> = self.vmmc.read_export(dm.export, dm.offset, take).to_vec();
        let Some(msg) = SvmMsg::decode(&bytes) else {
            debug_assert!(false, "undecodable SVM message from {:?}", dm.src);
            return;
        };
        self.handle_msg(ctx, dm.src, msg);
    }

    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}

    fn on_send_failed(&mut self, ctx: &mut HostCtx, msg_id: u64, _dst: NodeId) {
        // The NIC exhausted its remap budget and dropped the message. With
        // a recovery policy installed, schedule a backoff-paced re-post
        // (same msg_id — idempotent at the receiver); without one, this is
        // the paper's silent drop.
        if let Some(delay) = self.vmmc.on_send_failed(ctx.now(), msg_id) {
            ctx.wake_in(delay, RETRY_TOKEN);
        }
    }
}
