//! Value interner with stable `u32` ids.
//!
//! Route tables hold one route per destination on every NIC — O(n²) buffers
//! cluster-wide, and under up*/down* or spare-tree routing many of them are
//! identical. Interning stores each distinct value once and hands out dense
//! `u32` ids assigned in first-seen order, so id assignment is deterministic
//! whenever the call sequence is.

use std::collections::HashMap;
use std::hash::Hash;

/// Id of an interned value. `InternId::NONE` is the vacant sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternId(pub u32);

impl InternId {
    pub const NONE: InternId = InternId(u32::MAX);

    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

/// Deduplicating store of `T` values with dense first-seen-order ids.
#[derive(Debug, Clone)]
pub struct Interner<T> {
    values: Vec<T>,
    ids: HashMap<T, u32>,
}

impl<T: Copy + Eq + Hash> Interner<T> {
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            ids: HashMap::new(),
        }
    }

    /// Intern `value`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, value: T) -> InternId {
        if let Some(&id) = self.ids.get(&value) {
            return InternId(id);
        }
        let id = self.values.len() as u32;
        assert!(id != u32::MAX, "interner full");
        self.values.push(value);
        self.ids.insert(value, id);
        InternId(id)
    }

    /// Resolve an id. Panics on `InternId::NONE` or out-of-range ids.
    #[inline]
    pub fn resolve(&self, id: InternId) -> &T {
        &self.values[id.0 as usize]
    }

    /// Number of distinct values interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<T: Copy + Eq + Hash> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_resolves() {
        let mut i: Interner<[u8; 4]> = Interner::new();
        let a = i.intern([1, 2, 3, 4]);
        let b = i.intern([9, 9, 9, 9]);
        let a2 = i.intern([1, 2, 3, 4]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), &[1, 2, 3, 4]);
        assert_eq!(i.resolve(b), &[9, 9, 9, 9]);
        assert!(InternId::NONE.is_none());
        assert!(!a.is_none());
    }

    #[test]
    fn ids_are_first_seen_dense() {
        let mut i: Interner<u16> = Interner::new();
        for (n, v) in [5u16, 7, 5, 9, 7, 11].iter().enumerate() {
            let id = i.intern(*v);
            // ids 0,1,0,2,1,3
            let expect = [0u32, 1, 0, 2, 1, 3][n];
            assert_eq!(id.0, expect);
        }
    }
}
