//! Conservative time-window synchronization for sharded simulation.
//!
//! Classic Chandy–Misra–Bryant-style windows: each round, every shard
//! publishes the timestamp of its next local event; the global bound is
//! `min(next) + lookahead`, where lookahead is the minimum latency any
//! cross-shard message can add on top of its emission time. All shards then
//! run their local events strictly below the bound in parallel, exchange the
//! messages they emitted, and repeat. Safety: a message emitted while
//! processing an event at time `t ≥ min(next)` carries a delivery time
//! `≥ t + lookahead ≥ bound`, so no shard can receive anything inside the
//! window it already ran.
//!
//! # Determinism
//!
//! The bound is a pure function of shard states; message exchange sorts each
//! shard's inbox stably by delivery time with ties broken by source-shard
//! order and emission order. Runs with the same shard count are therefore
//! bit-reproducible regardless of thread scheduling.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One shard of a partitioned simulation, driven by [`run_sharded`].
pub trait ShardSim: Send {
    type Msg: Send;

    /// Absolute time (ns) of the next local event, or `None` when idle.
    fn next_time(&mut self) -> Option<u64>;

    /// Run every local event with `time < bound`, appending emitted
    /// cross-shard messages as `(dst_shard, delivery_time, msg)`.
    /// Emission order within the window must be deterministic.
    fn run_window(&mut self, bound: u64, out: &mut Vec<(usize, u64, Self::Msg)>);

    /// Accept a message routed to this shard, to fire at `at`.
    fn deliver(&mut self, at: u64, msg: Self::Msg);
}

/// Wrapper asserting that a value (and every shared handle reachable from
/// it, e.g. `Rc` clones) is moved to a worker thread *as a group* and only
/// ever touched by one thread at a time. [`run_sharded`] upholds this: each
/// shard is borrowed by exactly one worker for the duration of the run.
pub struct SendCell<T>(pub T);

// SAFETY: see type docs — the contract is linear hand-off, never sharing.
unsafe impl<T> Send for SendCell<T> {}

/// Counters from one sharded run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SyncStats {
    /// Synchronization rounds (barrier epochs) executed.
    pub rounds: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
}

/// Spin barrier with generation counter; cheap enough for the per-window
/// cadence of conservative synchronization (a condvar barrier would dominate
/// the run time at millions of small windows).
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Run `shards` in lockstep windows until every shard is idle or past `end`
/// (exclusive, nanoseconds). `lookahead` must be ≥ 1 ns — it is what
/// guarantees each window makes progress.
///
/// Messages a shard emits during a window are handed to their destination
/// before the next window's horizon is computed, so `next_time` always
/// accounts for pending cross-shard traffic.
pub fn run_sharded<S: ShardSim>(shards: &mut [S], lookahead: u64, end: u64) -> SyncStats {
    assert!(lookahead >= 1, "zero lookahead cannot make progress");
    let n = shards.len();
    assert!(n > 0);
    if n == 1 {
        return run_single(&mut shards[0], end);
    }

    let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    // mailboxes[src][dst]: written only by src's worker during the run
    // phase, drained only by dst's worker during the deliver phase; the
    // barrier between the phases makes the mutexes uncontended.
    type MailboxRow<M> = Vec<Mutex<Vec<(u64, M)>>>;
    let mailboxes: Vec<MailboxRow<S::Msg>> = (0..n)
        .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let barrier = SpinBarrier::new(n);
    let rounds = AtomicU64::new(0);
    let messages = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (i, shard) in shards.iter_mut().enumerate() {
            let next = &next;
            let mailboxes = &mailboxes;
            let barrier = &barrier;
            let rounds = &rounds;
            let messages = &messages;
            scope.spawn(move || {
                let mut out: Vec<(usize, u64, S::Msg)> = Vec::new();
                let mut inbox: Vec<(u64, S::Msg)> = Vec::new();
                loop {
                    // Publish the local horizon (idle or beyond `end` → MAX).
                    let t = match shard.next_time() {
                        Some(t) if t < end => t,
                        _ => u64::MAX,
                    };
                    next[i].store(t, Ordering::SeqCst);
                    barrier.wait();

                    // Every worker computes the same global bound.
                    let min = next.iter().map(|a| a.load(Ordering::SeqCst)).min().unwrap();
                    if min == u64::MAX {
                        break;
                    }
                    let bound = min.saturating_add(lookahead).min(end);
                    if i == 0 {
                        rounds.fetch_add(1, Ordering::Relaxed);
                    }

                    // Run the window and distribute emitted messages.
                    shard.run_window(bound, &mut out);
                    if !out.is_empty() {
                        messages.fetch_add(out.len() as u64, Ordering::Relaxed);
                        for (dst, at, msg) in out.drain(..) {
                            debug_assert!(dst < n);
                            debug_assert!(at >= bound, "message violates lookahead");
                            mailboxes[i][dst].lock().unwrap().push((at, msg));
                        }
                    }
                    barrier.wait();

                    // Drain my inbox in deterministic order: source-shard
                    // order concatenated, then a stable sort by delivery
                    // time (ties keep source/emission order).
                    inbox.clear();
                    for row in mailboxes.iter() {
                        inbox.append(&mut row[i].lock().unwrap());
                    }
                    inbox.sort_by_key(|&(at, _)| at);
                    for (at, msg) in inbox.drain(..) {
                        shard.deliver(at, msg);
                    }
                }
            });
        }
    });

    SyncStats {
        rounds: rounds.load(Ordering::Relaxed),
        messages: messages.load(Ordering::Relaxed),
    }
}

/// Degenerate single-shard run: no threads, no windows.
fn run_single<S: ShardSim>(shard: &mut S, end: u64) -> SyncStats {
    let mut out = Vec::new();
    let mut rounds = 0;
    let mut messages = 0;
    while let Some(t) = shard.next_time() {
        if t >= end {
            break;
        }
        shard.run_window(end, &mut out);
        rounds += 1;
        messages += out.len() as u64;
        // Self-addressed messages still flow through the mailbox path.
        out.sort_by_key(|&(_, at, _)| at);
        for (dst, at, msg) in out.drain(..) {
            debug_assert_eq!(dst, 0);
            shard.deliver(at, msg);
        }
    }
    SyncStats { rounds, messages }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy shard: a sorted list of local events; every `k`-th event emits a
    /// message to the next shard with `lookahead` delay. Records the order
    /// in which events fire.
    struct Toy {
        id: usize,
        n: usize,
        pending: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
        seq: u64,
        fired: Vec<(u64, u64)>,
        emit_every: u64,
        lookahead: u64,
    }

    impl Toy {
        fn new(id: usize, n: usize, times: &[u64], emit_every: u64, lookahead: u64) -> Self {
            let mut t = Self {
                id,
                n,
                pending: Default::default(),
                seq: 0,
                fired: Vec::new(),
                emit_every,
                lookahead,
            };
            for &at in times {
                let s = t.seq;
                t.seq += 1;
                t.pending.push(std::cmp::Reverse((at, s)));
            }
            t
        }
    }

    impl ShardSim for Toy {
        type Msg = u64;

        fn next_time(&mut self) -> Option<u64> {
            self.pending.peek().map(|e| e.0 .0)
        }

        fn run_window(&mut self, bound: u64, out: &mut Vec<(usize, u64, u64)>) {
            while let Some(&std::cmp::Reverse((at, s))) = self.pending.peek() {
                if at >= bound {
                    break;
                }
                self.pending.pop();
                self.fired.push((at, s));
                if self.emit_every > 0 && s % self.emit_every == 0 {
                    out.push(((self.id + 1) % self.n, at + self.lookahead, at));
                }
            }
        }

        fn deliver(&mut self, at: u64, _msg: u64) {
            let s = self.seq;
            self.seq += 1;
            self.pending.push(std::cmp::Reverse((at, s)));
        }
    }

    #[test]
    fn windows_fire_all_events_in_time_order() {
        let la = 50;
        let mut shards: Vec<Toy> = (0..4)
            .map(|i| {
                let times: Vec<u64> = (0..200u64)
                    .map(|k| (k * 37 + i as u64 * 11) % 5000)
                    .collect();
                Toy::new(i, 4, &times, 3, la)
            })
            .collect();
        let stats = run_sharded(&mut shards, la, u64::MAX);
        assert!(stats.rounds > 0);
        assert!(stats.messages > 0);
        for s in &shards {
            assert!(s.pending.is_empty());
            for w in s.fired.windows(2) {
                assert!(w[0].0 <= w[1].0, "events fired out of time order");
            }
        }
    }

    #[test]
    fn same_shard_count_is_deterministic() {
        let la = 10;
        let run = || {
            let mut shards: Vec<Toy> = (0..3)
                .map(|i| {
                    let times: Vec<u64> =
                        (0..150u64).map(|k| (k * 13 + i as u64 * 7) % 900).collect();
                    Toy::new(i, 3, &times, 2, la)
                })
                .collect();
            run_sharded(&mut shards, la, u64::MAX);
            shards.into_iter().map(|s| s.fired).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn end_bound_is_exclusive() {
        let mut shards = vec![Toy::new(0, 1, &[5, 10, 15], 0, 1)];
        run_sharded(&mut shards, 1, 15);
        assert_eq!(
            shards[0].fired.iter().map(|f| f.0).collect::<Vec<_>>(),
            vec![5, 10]
        );
    }
}
