//! `san-des` — engine core for the SAN reproduction.
//!
//! This crate sits *below* `san-sim` and holds the performance-critical
//! machinery that every layer above shares:
//!
//! * [`wheel::TimingWheel`] — hierarchical timing wheel / calendar queue with
//!   an overflow tier for far-future timers. O(1) schedule and near-O(1) fire
//!   close to the horizon, with pop order *identical* to a binary heap keyed
//!   on `(time, insertion sequence)` — the determinism contract of the repo.
//! * [`heap::HeapQueue`] — the legacy `BinaryHeap` scheduler, kept as the
//!   reference implementation for equivalence tests and microbenchmarks.
//! * [`arena`] — slab allocator with stable `u32` indices + generation tags
//!   (in-flight packets), a chain arena for wormhole channel-occupancy lists,
//!   and a box pool for packet recycling on the NIC hot path.
//! * [`intern`] — byte-buffer interner with stable `u32` ids (route tables).
//! * [`sync`] — conservative time-window synchronization for sharded
//!   parallel simulation (CMB-style lookahead windows over a spin barrier).
//!
//! Everything here is plain `std`; determinism is the design constraint that
//! shapes each structure, and each module documents the ordering invariant it
//! preserves.

pub mod arena;
pub mod heap;
pub mod intern;
pub mod sync;
pub mod wheel;
