//! Legacy binary-heap scheduler keyed on `(time, sequence)`.
//!
//! This is the reference implementation the timing wheel must match pop for
//! pop: the sequence number makes simultaneous events fire in insertion
//! order, which is what makes whole-system runs reproducible. It stays in the
//! tree for the wheel-vs-heap equivalence tests and the scheduler
//! microbenchmark, and as a runtime fallback (`EventQueue::legacy_heap` in
//! `san-sim`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic priority queue of `(u64 nanos, payload)` events.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub(crate) key: Reverse<(u64, u64)>,
    pub(crate) ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> HeapQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::with_capacity(1024),
            seq: 0,
        }
    }

    /// Insert an event at absolute time `at` (nanoseconds).
    #[inline]
    pub fn push(&mut self, at: u64, ev: E) {
        let s = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, s)),
            ev,
        });
    }

    /// Remove and return the earliest event (FIFO among ties).
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.ev))
    }

    /// Timestamp of the next event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostic).
    #[inline]
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = HeapQueue::new();
        q.push(5, "b");
        q.push(1, "a");
        q.push(9, "c");
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((9, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = HeapQueue::new();
        for i in 0..1000u32 {
            q.push(7, i);
        }
        for i in 0..1000u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }
}
