//! Arena allocators for hot simulation state.
//!
//! * [`Slab`] — stable `u32` indices with generation tags. Matches the
//!   semantics the fabric engine previously hand-rolled for in-flight
//!   packets (`Vec<Option<Flight>>` + epoch vector + LIFO free list), so
//!   porting onto it changes no slot-reuse order and therefore no trace.
//! * [`ChainArena`] — singly linked chains of `u32` values carved out of one
//!   shared node pool. Wormhole flights hold a chain of acquired channels;
//!   with thousands of concurrent flights this replaces a `Vec` allocation
//!   per flight with two `u32`s in the flight plus pooled nodes.
//! * [`Pool`] — recycles `Box<T>` allocations on the NIC packet hot path.

/// Slab with stable indices, LIFO slot reuse, and per-slot generation tags.
///
/// Generations start at 0 and bump on removal, so a live handle is
/// `(index, generation)` and a stale handle can be detected by equality —
/// the same discipline the fabric engine uses for its flight epochs.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            slots: Vec::with_capacity(cap),
            gens: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert, returning `(index, generation)` of the slot used.
    pub fn insert(&mut self, value: T) -> (u32, u32) {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none());
            self.slots[idx as usize] = Some(value);
            (idx, self.gens[idx as usize])
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Some(value));
            self.gens.push(0);
            (idx, 0)
        }
    }

    /// Remove the value at `idx`, bumping its generation and recycling the
    /// slot (LIFO). Returns `None` if the slot is already vacant.
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        let v = self.slots.get_mut(idx as usize)?.take()?;
        self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
        self.free.push(idx);
        self.len -= 1;
        Some(v)
    }

    #[inline]
    pub fn get(&self, idx: u32) -> Option<&T> {
        self.slots.get(idx as usize)?.as_ref()
    }

    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        self.slots.get_mut(idx as usize)?.as_mut()
    }

    /// Current generation of slot `idx` (0 for never-used indices in range).
    #[inline]
    pub fn generation(&self, idx: u32) -> u32 {
        self.gens.get(idx as usize).copied().unwrap_or(0)
    }

    /// True iff `(idx, generation)` names a live value.
    #[inline]
    pub fn contains(&self, idx: u32, generation: u32) -> bool {
        self.generation(idx) == generation && self.get(idx).is_some()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (occupied + free).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterate `(index, &value)` over occupied slots in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }

    /// Iterate `(index, &mut value)` over occupied slots in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (i as u32, v)))
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

const NIL: u32 = u32::MAX;

/// Handle to one chain inside a [`ChainArena`]. An empty chain is all-NIL.
#[derive(Debug, Clone, Copy)]
pub struct Chain {
    head: u32,
    tail: u32,
    len: u32,
}

impl Chain {
    pub const EMPTY: Chain = Chain {
        head: NIL,
        tail: NIL,
        len: 0,
    };

    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Chain {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Node pool for singly linked `u32` chains (insertion-ordered iteration).
#[derive(Debug, Default)]
pub struct ChainArena {
    /// `(value, next)`; vacant nodes reuse `next` as the free-list link.
    nodes: Vec<(u32, u32)>,
    free_head: u32,
}

impl ChainArena {
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free_head: NIL,
        }
    }

    /// Append `value` to `chain`.
    pub fn push(&mut self, chain: &mut Chain, value: u32) {
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].1;
            self.nodes[idx as usize] = (value, NIL);
            idx
        } else {
            self.nodes.push((value, NIL));
            (self.nodes.len() - 1) as u32
        };
        if chain.tail == NIL {
            chain.head = idx;
        } else {
            self.nodes[chain.tail as usize].1 = idx;
        }
        chain.tail = idx;
        chain.len += 1;
    }

    /// Last value of the chain, if any.
    #[inline]
    pub fn last(&self, chain: &Chain) -> Option<u32> {
        if chain.tail == NIL {
            None
        } else {
            Some(self.nodes[chain.tail as usize].0)
        }
    }

    /// Iterate values in insertion order.
    pub fn iter<'a>(&'a self, chain: &Chain) -> impl Iterator<Item = u32> + 'a {
        let mut cur = chain.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let (v, next) = self.nodes[cur as usize];
                cur = next;
                Some(v)
            }
        })
    }

    /// Free the chain's nodes back to the pool, returning its values.
    pub fn take(&mut self, chain: &mut Chain) -> Vec<u32> {
        let mut out = Vec::with_capacity(chain.len());
        let mut cur = chain.head;
        while cur != NIL {
            let (v, next) = self.nodes[cur as usize];
            out.push(v);
            self.nodes[cur as usize].1 = self.free_head;
            self.free_head = cur;
            cur = next;
        }
        *chain = Chain::EMPTY;
        out
    }

    /// Free the chain's nodes without collecting the values.
    pub fn clear(&mut self, chain: &mut Chain) {
        let mut cur = chain.head;
        while cur != NIL {
            let next = self.nodes[cur as usize].1;
            self.nodes[cur as usize].1 = self.free_head;
            self.free_head = cur;
            cur = next;
        }
        *chain = Chain::EMPTY;
    }

    /// Total pooled nodes (live + free), for diagnostics.
    pub fn pooled_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Bounded recycler for `Box<T>` allocations.
///
/// The NIC layer boxes every packet it schedules through the event queue;
/// recycling the boxes turns that steady malloc/free churn into a pointer
/// swap. Contents of recycled boxes are overwritten by the caller.
#[derive(Debug)]
pub struct Pool<T> {
    free: Vec<Box<T>>,
    cap: usize,
    pub hits: u64,
    pub misses: u64,
}

impl<T> Pool<T> {
    pub fn new(cap: usize) -> Self {
        Self {
            free: Vec::new(),
            cap,
            hits: 0,
            misses: 0,
        }
    }

    /// Take a box, filling it with `make()`. Reuses a pooled allocation when
    /// one is available.
    pub fn take_with(&mut self, make: impl FnOnce() -> T) -> Box<T> {
        if let Some(mut b) = self.free.pop() {
            self.hits += 1;
            *b = make();
            b
        } else {
            self.misses += 1;
            Box::new(make())
        }
    }

    /// Return a box to the pool (dropped if the pool is full).
    pub fn put(&mut self, b: Box<T>) {
        if self.free.len() < self.cap {
            self.free.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_reuses_slots_lifo_and_bumps_generation() {
        let mut s = Slab::new();
        let (a, ga) = s.insert("a");
        let (b, gb) = s.insert("b");
        assert_eq!((a, ga, b, gb), (0, 0, 1, 0));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(b), Some("b"));
        assert_eq!(s.remove(b), None);
        // LIFO: last freed slot is reused first.
        let (c, gc) = s.insert("c");
        assert_eq!((c, gc), (b, 1));
        let (d, gd) = s.insert("d");
        assert_eq!((d, gd), (a, 1));
        assert!(s.contains(c, 1));
        assert!(!s.contains(c, 0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.iter().map(|(i, _)| i).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn chain_preserves_insertion_order_and_recycles() {
        let mut arena = ChainArena::new();
        let mut c1 = Chain::EMPTY;
        let mut c2 = Chain::EMPTY;
        arena.push(&mut c1, 10);
        arena.push(&mut c2, 99);
        arena.push(&mut c1, 20);
        arena.push(&mut c1, 30);
        assert_eq!(arena.iter(&c1).collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(arena.last(&c1), Some(30));
        assert_eq!(c1.len(), 3);
        assert_eq!(arena.take(&mut c1), vec![10, 20, 30]);
        assert!(c1.is_empty());
        assert_eq!(arena.iter(&c2).collect::<Vec<_>>(), vec![99]);
        // Freed nodes are reused; pool does not grow.
        let before = arena.pooled_nodes();
        let mut c3 = Chain::EMPTY;
        arena.push(&mut c3, 1);
        arena.push(&mut c3, 2);
        arena.push(&mut c3, 3);
        assert_eq!(arena.pooled_nodes(), before);
        assert_eq!(arena.iter(&c3).collect::<Vec<_>>(), vec![1, 2, 3]);
        arena.clear(&mut c3);
        assert!(arena.last(&c3).is_none());
    }

    #[test]
    fn pool_recycles_boxes() {
        let mut p: Pool<u64> = Pool::new(4);
        let a = p.take_with(|| 1);
        assert_eq!(p.misses, 1);
        p.put(a);
        let b = p.take_with(|| 2);
        assert_eq!(p.hits, 1);
        assert_eq!(*b, 2);
    }
}
