//! Hierarchical timing wheel with an overflow tier.
//!
//! Four levels of 256 slots each cover the near horizon; anything beyond the
//! top span (~275 simulated seconds) waits in an overflow heap until the
//! sweep frontier reaches its epoch. Slot granularities:
//!
//! | level | granularity | span     |
//! |-------|-------------|----------|
//! | 0     | 64 ns       | 16.4 µs  |
//! | 1     | 16.4 µs     | 4.2 ms   |
//! | 2     | 4.2 ms      | 1.07 s   |
//! | 3     | 1.07 s      | 275 s    |
//!
//! # Ordering contract
//!
//! Pop order is **exactly** that of a binary heap keyed on
//! `(time, insertion sequence)` — nondecreasing time, FIFO among same-tick
//! ties. The whole repo's byte-identical reproducibility rests on this, so
//! the wheel never reorders: swept slots drain into a small `due` heap keyed
//! on `(time, seq)`, and every push below the sweep frontier goes straight
//! into that heap.
//!
//! # Invariants
//!
//! * `swept_until` is the exclusive sweep frontier, always a multiple of the
//!   level-0 granularity. Every event with `t < swept_until` is in `due`.
//! * An event stored at level `l` lies inside the frontier's current level-`l`
//!   epoch (the 256-slot span containing `swept_until`) and outside every
//!   lower level's epoch; overflow events lie outside the top epoch.
//! * Refill adopts overflow events whose epoch the frontier has entered
//!   *before* scanning the wheels, then sweeps the nearest occupied level-0
//!   slot, redistributing one higher-level slot at a time when a level-0
//!   epoch is exhausted. Scans start at the frontier's own slot (inclusive),
//!   so rolling into a new epoch can never skip events parked higher up.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::heap::Entry;

const LEVELS: usize = 4;
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
const BASE_SHIFT: u32 = 6;
/// Shift of the top level's epoch: times equal under `>> TOP_EPOCH_SHIFT`
/// fit somewhere in the wheels once the frontier is in that epoch.
const TOP_EPOCH_SHIFT: u32 = BASE_SHIFT + SLOT_BITS * LEVELS as u32;

#[inline]
fn shift(level: usize) -> u32 {
    BASE_SHIFT + SLOT_BITS * level as u32
}

#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> shift(level)) & (SLOTS as u64 - 1)) as usize
}

#[inline]
fn epoch_of(t: u64, level: usize) -> u64 {
    t >> (shift(level) + SLOT_BITS)
}

#[derive(Debug)]
struct Level<E> {
    slots: Vec<Vec<(u64, u64, E)>>,
    /// One bit per slot; set iff the slot is non-empty.
    occ: [u64; SLOTS / 64],
}

impl<E> Level<E> {
    fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; SLOTS / 64],
        }
    }

    #[inline]
    fn put(&mut self, slot: usize, item: (u64, u64, E)) {
        self.slots[slot].push(item);
        self.occ[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn is_occupied(&self, slot: usize) -> bool {
        self.occ[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// Nearest non-empty slot at index `from` or later, if any.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        let mut bits = self.occ[w] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == SLOTS / 64 {
                return None;
            }
            bits = self.occ[w];
        }
    }

    #[inline]
    fn take(&mut self, slot: usize) -> Vec<(u64, u64, E)> {
        self.occ[slot >> 6] &= !(1u64 << (slot & 63));
        std::mem::take(&mut self.slots[slot])
    }
}

/// Deterministic timing-wheel scheduler of `(u64 nanos, payload)` events.
///
/// Same API and pop order as [`crate::heap::HeapQueue`]; `peek_time` takes
/// `&mut self` because peeking may have to sweep slots into the due window.
#[derive(Debug)]
pub struct TimingWheel<E> {
    levels: Vec<Level<E>>,
    overflow: BinaryHeap<Entry<E>>,
    /// Events already inside the sweep frontier, keyed `(time, seq)`.
    due: BinaryHeap<Entry<E>>,
    /// Exclusive sweep frontier; multiple of the level-0 granularity.
    swept_until: u64,
    seq: u64,
    len: usize,
}

impl<E> TimingWheel<E> {
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            due: BinaryHeap::with_capacity(64),
            swept_until: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Insert an event at absolute time `at` (nanoseconds).
    #[inline]
    pub fn push(&mut self, at: u64, ev: E) {
        let s = self.seq;
        self.seq += 1;
        self.len += 1;
        self.place(at, s, ev);
    }

    fn place(&mut self, at: u64, s: u64, ev: E) {
        if at < self.swept_until {
            self.due.push(Entry {
                key: Reverse((at, s)),
                ev,
            });
            return;
        }
        let c = self.swept_until;
        for lvl in 0..LEVELS {
            if epoch_of(at, lvl) == epoch_of(c, lvl) {
                self.levels[lvl].put(slot_of(at, lvl), (at, s, ev));
                return;
            }
        }
        self.overflow.push(Entry {
            key: Reverse((at, s)),
            ev,
        });
    }

    /// Advance the sweep frontier until at least one event sits in `due`.
    /// Returns false iff the wheel holds no events at all.
    fn refill(&mut self) -> bool {
        debug_assert!(self.due.is_empty());
        if self.len == 0 {
            return false;
        }
        loop {
            // Adopt overflow events whose top epoch the frontier has entered.
            while let Some(e) = self.overflow.peek() {
                if e.key.0 .0 >> TOP_EPOCH_SHIFT != self.swept_until >> TOP_EPOCH_SHIFT {
                    break;
                }
                let Entry {
                    key: Reverse((t, s)),
                    ev,
                } = self.overflow.pop().unwrap();
                self.place(t, s, ev);
            }

            // Cascade any occupied higher-level slot the frontier sits in.
            // Mandatory before sweeping level 0: after rolling into a new
            // epoch, events for it may still be parked one level up while
            // fresh pushes land directly in level 0 — sweeping level 0
            // first would overtake them. (Pushes never target the
            // frontier's own slot at levels ≥ 1: a level-l slot spans
            // exactly one level-(l-1) epoch, so anything inside it places
            // lower. Occupancy here only arises at epoch entry.)
            let mut cascaded = false;
            for lvl in 1..LEVELS {
                let slot = slot_of(self.swept_until, lvl);
                if self.levels[lvl].is_occupied(slot) {
                    for (t, s, ev) in self.levels[lvl].take(slot) {
                        debug_assert!(t >= self.swept_until);
                        self.place(t, s, ev);
                    }
                    cascaded = true;
                }
            }
            if cascaded {
                continue;
            }

            // Sweep the nearest occupied level-0 slot in the current epoch.
            if let Some(slot) = self.levels[0].next_occupied(slot_of(self.swept_until, 0)) {
                for (t, s, ev) in self.levels[0].take(slot) {
                    debug_assert!(t >= self.swept_until);
                    self.due.push(Entry {
                        key: Reverse((t, s)),
                        ev,
                    });
                }
                let epoch_base = self.swept_until >> shift(1) << shift(1);
                self.swept_until = epoch_base.saturating_add(((slot as u64) + 1) << BASE_SHIFT);
                return true;
            }

            // Level-0 epoch exhausted: redistribute the nearest occupied slot
            // of the shallowest higher level. Events at level l+1 all lie
            // beyond the current level-l epoch, so shallowest-first finds the
            // globally nearest occupied region.
            let mut moved = false;
            for lvl in 1..LEVELS {
                if let Some(slot) = self.levels[lvl].next_occupied(slot_of(self.swept_until, lvl)) {
                    let epoch_base = self.swept_until >> shift(lvl + 1) << shift(lvl + 1);
                    let slot_base = epoch_base + ((slot as u64) << shift(lvl));
                    self.swept_until = self.swept_until.max(slot_base);
                    for (t, s, ev) in self.levels[lvl].take(slot) {
                        debug_assert!(t >= self.swept_until);
                        self.place(t, s, ev);
                    }
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }

            // Wheels empty: jump the frontier to the overflow horizon.
            if self.overflow.is_empty() {
                debug_assert_eq!(self.len, 0);
                return false;
            }
            let t_min = self.overflow.peek().unwrap().key.0 .0;
            let target = t_min >> TOP_EPOCH_SHIFT << TOP_EPOCH_SHIFT;
            debug_assert!(target > self.swept_until);
            self.swept_until = self.swept_until.max(target);
        }
    }

    /// Remove and return the earliest event (FIFO among ties).
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, E)> {
        if self.due.is_empty() && !self.refill() {
            return None;
        }
        let e = self.due.pop().unwrap();
        self.len -= 1;
        Some((e.key.0 .0, e.ev))
    }

    /// Timestamp of the next event without removing it. `&mut` because the
    /// wheel may have to sweep slots forward to find it.
    #[inline]
    pub fn peek_time(&mut self) -> Option<u64> {
        if self.due.is_empty() && !self.refill() {
            return None;
        }
        Some(self.due.peek().unwrap().key.0 .0)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever pushed (diagnostic).
    #[inline]
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = TimingWheel::new();
        q.push(5, "b");
        q.push(1, "a");
        q.push(9, "c");
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((5, "b")));
        assert_eq!(q.pop(), Some((9, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = TimingWheel::new();
        for i in 0..1000u32 {
            q.push(7, i);
        }
        for i in 0..1000u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn push_below_frontier_lands_in_due() {
        let mut q = TimingWheel::new();
        q.push(100_000, 1u32);
        assert_eq!(q.pop().unwrap().1, 1);
        // Frontier is now past 100_000; schedule "in the past" of the sweep
        // (legal as long as the simulation clock allows it).
        q.push(50_000, 2);
        q.push(150_000, 3);
        assert_eq!(q.pop(), Some((50_000, 2)));
        assert_eq!(q.pop(), Some((150_000, 3)));
    }

    #[test]
    fn far_future_goes_through_overflow() {
        let mut q = TimingWheel::new();
        // Beyond the top span (~2^38 ns) and near u64::MAX.
        q.push(1u64 << 50, "far");
        q.push(u64::MAX, "max");
        q.push(10, "near");
        assert_eq!(q.pop(), Some((10, "near")));
        assert_eq!(q.pop(), Some((1u64 << 50, "far")));
        assert_eq!(q.pop(), Some((u64::MAX, "max")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn epoch_roll_does_not_strand_higher_levels() {
        let mut q = TimingWheel::new();
        // Event at the very end of a level-0 epoch forces the frontier to
        // roll into the next epoch whose events live at level 1.
        let epoch = 1u64 << (BASE_SHIFT + SLOT_BITS);
        q.push(epoch - 1, 0u32);
        q.push(epoch, 1);
        q.push(epoch + 1, 2);
        assert_eq!(q.pop(), Some((epoch - 1, 0)));
        assert_eq!(q.pop(), Some((epoch, 1)));
        assert_eq!(q.pop(), Some((epoch + 1, 2)));
    }

    #[test]
    fn roll_then_push_does_not_overtake_parked_events() {
        // Regression: event A parks at level 1; the frontier rolls into A's
        // epoch; a *later* event B is then pushed straight into level 0 of
        // the new epoch. Sweeping must cascade A down before touching B.
        let mut q = TimingWheel::new();
        let epoch = 1u64 << (BASE_SHIFT + SLOT_BITS);
        q.push(epoch + 1, "a"); // level 1
        q.push(epoch - 1, "first"); // level 0, last slot of epoch 0
        assert_eq!(q.pop(), Some((epoch - 1, "first"))); // frontier rolls
        q.push(epoch + 116, "b"); // level 0 of the new epoch
        assert_eq!(q.pop(), Some((epoch + 1, "a")));
        assert_eq!(q.pop(), Some((epoch + 116, "b")));
    }

    #[test]
    fn overflow_adopted_after_top_level_roll() {
        let mut q = TimingWheel::new();
        let top = 1u64 << TOP_EPOCH_SHIFT;
        // One event at the very end of the first top epoch, one just after
        // the boundary (initially overflow). The roll must adopt the
        // overflow event before sweeping anything later.
        q.push(top - 1, 0u32);
        q.push(top + 5, 1);
        q.push(top + (1 << 20), 2);
        assert_eq!(q.pop(), Some((top - 1, 0)));
        assert_eq!(q.pop(), Some((top + 5, 1)));
        assert_eq!(q.pop(), Some((top + (1 << 20), 2)));
    }

    #[test]
    fn matches_heap_on_dense_bursts() {
        let mut w = TimingWheel::new();
        let mut h = HeapQueue::new();
        let mut t = 0u64;
        for i in 0..5000u32 {
            t = t
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = (t >> 33) % 500_000;
            w.push(at, i);
            h.push(at, i);
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_heap_interleaved() {
        let mut w = TimingWheel::new();
        let mut h = HeapQueue::new();
        let mut x = 12345u64;
        let mut now = 0u64;
        for i in 0..20_000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = x >> 33;
            if r.is_multiple_of(3) && !h.is_empty() {
                let (tw, ew) = w.pop().unwrap();
                let (th, eh) = h.pop().unwrap();
                assert_eq!((tw, ew), (th, eh));
                now = tw;
            } else {
                // Mix of near, same-tick, and far-future schedules.
                let delta = match r % 5 {
                    0 => 0,
                    1 => r % 64,
                    2 => r % 100_000,
                    3 => r % 50_000_000,
                    _ => 1 << 40,
                };
                let at = now + delta;
                w.push(at, i);
                h.push(at, i);
            }
            assert_eq!(w.len(), h.len());
            assert_eq!(w.peek_time(), h.peek_time());
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::heap::HeapQueue;
    use proptest::prelude::*;

    proptest! {
        /// Wheel and heap pop identical `(time, payload)` sequences for any
        /// schedule, including same-tick ties (satellite requirement).
        #[test]
        fn wheel_equals_heap(times in proptest::collection::vec(0u64..2_000_000, 1..300)) {
            let mut w = TimingWheel::new();
            let mut h = HeapQueue::new();
            for (i, &t) in times.iter().enumerate() {
                w.push(t, i);
                h.push(t, i);
            }
            loop {
                let (a, b) = (w.pop(), h.pop());
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }

        /// Same equivalence under interleaved push/pop with relative delays
        /// spanning every wheel level and the overflow tier. Each op word
        /// encodes (kind, delay-mantissa, level-scale).
        #[test]
        fn wheel_equals_heap_interleaved(
            ops in proptest::collection::vec(0u64..(1 << 40), 1..200)
        ) {
            let mut w = TimingWheel::new();
            let mut h = HeapQueue::new();
            let mut now = 0u64;
            for (i, &op) in ops.iter().enumerate() {
                let kind = op & 3;
                let small = (op >> 2) & 63;
                let scale = (op >> 8) & 3;
                if kind == 3 {
                    let (a, b) = (w.pop(), h.pop());
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a { now = t; }
                } else {
                    let delta = small << (scale * 12); // 0..2^48 range
                    w.push(now + delta, i);
                    h.push(now + delta, i);
                }
                prop_assert_eq!(w.peek_time(), h.peek_time());
            }
            loop {
                let (a, b) = (w.pop(), h.pop());
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
        }
    }
}
