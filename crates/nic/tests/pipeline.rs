//! End-to-end tests of the unreliable (no fault tolerance) pipeline:
//! the simulated system must reproduce the paper's failure-free baseline —
//! ~8 µs one-way latency for a 4-byte message and a ~118 MB/s PCI-bound
//! bandwidth plateau — before any reliability machinery is added.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use san_fabric::topology;
use san_fabric::{NodeId, Packet, PacketFlags};
use san_nic::{
    Cluster, ClusterConfig, HostAgent, HostCtx, IdleHost, NicTiming, SendDesc, UnreliableFirmware,
};
use san_sim::Time;

type Inbox = Rc<RefCell<Vec<Packet>>>;

/// Records every deposited message.
struct Collector(Inbox);

impl HostAgent for Collector {
    fn on_start(&mut self, _ctx: &mut HostCtx) {}
    fn on_wake(&mut self, _ctx: &mut HostCtx, _token: u64) {}
    fn on_message(&mut self, _ctx: &mut HostCtx, pkt: Packet) {
        self.0.borrow_mut().push(pkt);
    }
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}

/// Sends `count` packets of `bytes` each to `dst`, modelling the host
/// library cost before each post.
struct Sender {
    dst: NodeId,
    bytes: u32,
    count: u64,
    sent: u64,
}

fn make_desc(dst: NodeId, bytes: u32, msg_id: u64, posted_at: Time) -> SendDesc {
    let pio = bytes <= 32;
    let mut flags = PacketFlags::default();
    flags.set(PacketFlags::FIRST_SEG);
    flags.set(PacketFlags::LAST_SEG);
    SendDesc {
        dst,
        payload: if bytes <= 64 {
            Bytes::from(vec![0xA5u8; bytes as usize])
        } else {
            Bytes::new()
        },
        logical_len: bytes,
        pio,
        notify: false,
        msg_id,
        msg_offset: 0,
        msg_len: bytes,
        recv_buf: 0,
        flags,
        tenant: 0,
        posted_at,
    }
}

impl HostAgent for Sender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        // Model host library overhead before the descriptor reaches the NIC.
        let timing = NicTiming::default();
        let cost = if self.bytes <= 32 {
            timing.host_send_pio
        } else {
            timing.host_send_dma
        };
        ctx.wake_in(cost, 0);
    }
    fn on_wake(&mut self, ctx: &mut HostCtx, _token: u64) {
        // Post everything; the NIC pipelines (buffers permitting). The
        // host-side cost of subsequent posts overlaps the NIC work, which is
        // how a real streaming sender behaves. The first message's
        // `posted_at` is the user's initiation time (t = 0), so one-way
        // latency includes the host send stage as in Figure 3.
        let posted = ctx.now();
        while self.sent < self.count {
            let stamp = if self.sent == 0 { Time::ZERO } else { posted };
            let d = make_desc(self.dst, self.bytes, self.sent, stamp);
            ctx.post_send(d);
            self.sent += 1;
        }
    }
    fn on_message(&mut self, _ctx: &mut HostCtx, _pkt: Packet) {}
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}

fn two_node_cluster(sender: Sender) -> (Cluster, Inbox) {
    let (topo, _a, _b) = topology::pair_via_switch();
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    let hosts: Vec<Box<dyn HostAgent>> = vec![Box::new(sender), Box::new(Collector(inbox.clone()))];
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig::default(),
        |_| Box::new(UnreliableFirmware),
        hosts,
    );
    cluster.install_shortest_routes();
    (cluster, inbox)
}

#[test]
fn four_byte_one_way_latency_is_about_8us() {
    let (mut cluster, inbox) = two_node_cluster(Sender {
        dst: NodeId(1),
        bytes: 4,
        count: 1,
        sent: 0,
    });
    cluster.run_until_idle();
    let inbox = inbox.borrow();
    assert_eq!(inbox.len(), 1);
    let pkt = &inbox[0];
    let lat = pkt.stamps.host_seen.since(pkt.stamps.host_post);
    let us = lat.as_micros_f64();
    assert!(
        (7.0..9.0).contains(&us),
        "4-byte no-FT latency ≈ 8 µs, got {us:.2} µs"
    );
    // Stage ordering must be monotone.
    let s = &pkt.stamps;
    assert!(s.host_post <= s.nic_tx_start);
    assert!(s.nic_tx_start <= s.injected);
    assert!(s.injected <= s.delivered);
    assert!(s.delivered <= s.deposited);
    assert!(s.deposited <= s.host_seen);
}

#[test]
fn payload_bytes_arrive_intact() {
    let (mut cluster, inbox) = two_node_cluster(Sender {
        dst: NodeId(1),
        bytes: 32,
        count: 1,
        sent: 0,
    });
    cluster.run_until_idle();
    let inbox = inbox.borrow();
    assert_eq!(inbox[0].payload.as_ref(), &[0xA5u8; 32][..]);
    assert!(inbox[0].crc_ok());
}

#[test]
fn unidirectional_bandwidth_hits_pci_plateau() {
    let n = 256u64; // 1 MB total in 4 KB packets
    let (mut cluster, inbox) = two_node_cluster(Sender {
        dst: NodeId(1),
        bytes: 4096,
        count: n,
        sent: 0,
    });
    cluster.run_until_idle();
    let inbox = inbox.borrow();
    assert_eq!(inbox.len(), n as usize);
    let first = inbox[0].stamps.host_post;
    let last = inbox.last().unwrap().stamps.deposited;
    let secs = last.since(first).as_secs_f64();
    let mbps = (n * 4096) as f64 / secs / 1e6;
    assert!(
        (105.0..122.0).contains(&mbps),
        "no-FT unidirectional bandwidth ≈ 118 MB/s (PCI bound), got {mbps:.1}"
    );
}

#[test]
fn small_queue_still_makes_progress() {
    let (topo, _a, _b) = topology::pair_via_switch();
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(Sender {
            dst: NodeId(1),
            bytes: 4096,
            count: 64,
            sent: 0,
        }),
        Box::new(Collector(inbox.clone())),
    ];
    let cfg = ClusterConfig {
        send_bufs: 2,
        ..Default::default()
    };
    let mut cluster = Cluster::new(topo, cfg, |_| Box::new(UnreliableFirmware), hosts);
    cluster.install_shortest_routes();
    cluster.run_until_idle();
    assert_eq!(inbox.borrow().len(), 64);
    // With only 2 buffers the sender must have blocked at least once.
    assert!(cluster.nics[0].core.stats.blocked_no_buffer.get() > 0);
}

#[test]
fn messages_arrive_in_posting_order() {
    let (mut cluster, inbox) = two_node_cluster(Sender {
        dst: NodeId(1),
        bytes: 512,
        count: 50,
        sent: 0,
    });
    cluster.run_until_idle();
    let ids: Vec<u64> = inbox.borrow().iter().map(|p| p.msg_id).collect();
    assert_eq!(ids, (0..50).collect::<Vec<_>>());
}

#[test]
fn no_route_descriptor_is_counted_not_wedged() {
    let (topo, _a, _b) = topology::pair_via_switch();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(Sender {
            dst: NodeId(1),
            bytes: 64,
            count: 3,
            sent: 0,
        }),
        Box::new(IdleHost),
    ];
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig::default(),
        |_| Box::new(UnreliableFirmware),
        hosts,
    );
    // No routes installed.
    cluster.run_until_idle();
    assert_eq!(cluster.nics[0].core.stats.unroutable.get(), 3);
    assert_eq!(cluster.engine.stats().injected, 0);
}
