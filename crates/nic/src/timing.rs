//! The calibrated cost model of the paper's testbed.
//!
//! Hardware (§3): dual Pentium-II/450 hosts, 32-bit PCI (~120 MB/s effective),
//! Myrinet M2M-PCI64A-2 NICs — LANai 7 @ 66 MHz with 2 MB SRAM, three DMA
//! engines — and 1.28 Gb/s (160 MB/s) full-duplex links.
//!
//! The constants below are chosen so that the simulated *failure-free,
//! no-fault-tolerance* system reproduces the paper's headline numbers:
//! ~8 µs one-way latency for a 4-byte message with the Figure 3 stage split,
//! and a large-message bandwidth plateau of ~118 MB/s limited by the PCI bus.
//! The fault-tolerance overheads (`ft_send_overhead`, `ft_rx_overhead`) are
//! the paper's measured ~1 µs per side (Figure 3).

use san_sim::Duration;

/// Every per-operation cost in the NIC/host path.
#[derive(Debug, Clone)]
pub struct NicTiming {
    /// Effective PCI bandwidth for host↔SRAM DMA (bytes/s). Paper: ~120 MB/s.
    pub pci_bandwidth: u64,
    /// Fixed setup cost of one host-DMA transaction.
    pub dma_setup: Duration,
    /// Host library cost to issue a small (PIO, ≤32 B) send: user-level
    /// checks, building + PIO-writing the descriptor and inline data.
    pub host_send_pio: Duration,
    /// Host library cost to issue a DMA (>32 B) send descriptor.
    pub host_send_dma: Duration,
    /// LANai cost to fetch a send descriptor and claim a send buffer.
    pub send_desc_proc: Duration,
    /// LANai cost to build the packet header and look up the route.
    pub send_hdr_build: Duration,
    /// LANai receive-path processing (dequeue + CRC compare + dispatch).
    pub rx_proc: Duration,
    /// Extra send-side cost of the reliability firmware (sequence
    /// assignment + retransmission-queue management). Paper: ≈1 µs.
    pub ft_send_overhead: Duration,
    /// Extra receive-side cost of the reliability firmware (sequence check
    /// + ACK bookkeeping). Paper: ≈1 µs.
    pub ft_rx_overhead: Duration,
    /// LANai cost to process one incoming acknowledgment (free buffers).
    pub ack_proc: Duration,
    /// LANai cost to emit one explicit ACK packet (header-only build).
    pub ack_build: Duration,
    /// Fixed cost of one retransmission-timer scan...
    pub timer_scan_base: Duration,
    /// ...plus this much per non-empty retransmission queue scanned.
    pub timer_scan_per_queue: Duration,
    /// LANai cost per packet re-enqueued for retransmission.
    pub retx_per_pkt: Duration,
    /// Host-side notification cost when a message is deposited (the
    /// receiving process notices new data).
    pub host_notify: Duration,
    /// Receiving process cost to consume/check a message.
    pub host_recv_check: Duration,
    /// LANai cost to build/process one mapping probe.
    pub probe_proc: Duration,
}

impl Default for NicTiming {
    fn default() -> Self {
        Self {
            pci_bandwidth: 120_000_000,
            dma_setup: Duration::from_nanos(600),
            host_send_pio: Duration::from_nanos(1_400),
            host_send_dma: Duration::from_nanos(1_100),
            send_desc_proc: Duration::from_nanos(1_200),
            send_hdr_build: Duration::from_nanos(1_300),
            rx_proc: Duration::from_nanos(1_200),
            ft_send_overhead: Duration::from_nanos(1_000),
            ft_rx_overhead: Duration::from_nanos(1_000),
            ack_proc: Duration::from_nanos(800),
            ack_build: Duration::from_nanos(700),
            timer_scan_base: Duration::from_nanos(600),
            timer_scan_per_queue: Duration::from_nanos(150),
            retx_per_pkt: Duration::from_nanos(500),
            host_notify: Duration::from_nanos(500),
            host_recv_check: Duration::from_nanos(800),
            probe_proc: Duration::from_nanos(800),
        }
    }
}

impl NicTiming {
    /// Host→SRAM (or SRAM→host) DMA time for `bytes`.
    #[inline]
    pub fn host_dma(&self, bytes: u32) -> Duration {
        self.dma_setup + Duration::for_bytes(bytes as u64, self.pci_bandwidth)
    }
}

/// VMMC constants (§3.2).
pub mod vmmc_consts {
    /// Messages at or below this are PIO'd by the host CPU.
    pub const PIO_LIMIT: u32 = 32;
    /// Messages larger than this are segmented by the MCP.
    pub const SEGMENT_BYTES: u32 = 4096;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_byte_latency_budget_is_about_8us() {
        // Sanity-check the calibration against Figure 3 before any machinery
        // exists: sum the no-FT stage costs for a 4-byte PIO message over
        // one switch (2 channel hops at 300 ns + ~25 wire bytes at 160 MB/s).
        let t = NicTiming::default();
        let wire = 2 * 300 + (16 + 1 + 4 + 4) as u64 * 1_000_000_000 / 160_000_000;
        let total = t.host_send_pio.nanos()
            + t.send_desc_proc.nanos()
            + t.send_hdr_build.nanos()
            + wire
            + t.rx_proc.nanos()
            + t.host_dma(4).nanos()
            + t.host_notify.nanos()
            + t.host_recv_check.nanos();
        let us = total as f64 / 1000.0;
        assert!(
            (7.0..9.0).contains(&us),
            "no-FT 4-byte latency ≈ 8 µs, got {us:.2}"
        );
        // And with fault tolerance: ≈ +2 µs (Figure 3).
        let ft = us + (t.ft_send_overhead.nanos() + t.ft_rx_overhead.nanos()) as f64 / 1000.0;
        assert!(
            (9.0..11.0).contains(&ft),
            "FT 4-byte latency ≈ 10 µs, got {ft:.2}"
        );
    }

    #[test]
    fn pci_bounds_large_message_bandwidth() {
        let t = NicTiming::default();
        // Per-4KB-packet PCI occupancy bounds throughput at ~118 MB/s.
        let per_pkt = t.host_dma(4096);
        let mbps = 4096.0 / per_pkt.as_secs_f64() / 1e6;
        assert!(
            (110.0..121.0).contains(&mbps),
            "PCI-bound plateau, got {mbps:.1} MB/s"
        );
    }

    #[test]
    fn nic_processing_hides_under_pci_for_bulk() {
        // The NIC CPU work per 4 KB packet (even with FT) must fit inside
        // the PCI DMA time, or the simulated bandwidth overhead of FT would
        // exceed the paper's <4%.
        let t = NicTiming::default();
        let cpu = t.send_desc_proc + t.send_hdr_build + t.ft_send_overhead;
        assert!(cpu < t.host_dma(4096));
        let rx_cpu = t.rx_proc + t.ft_rx_overhead + t.ack_build;
        assert!(rx_cpu < t.host_dma(4096));
    }
}
