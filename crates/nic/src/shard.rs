//! Sharded cluster: intra-trial parallelism over a partitioned fabric.
//!
//! The topology's switches are split into contiguous blocks along a
//! deterministic BFS order; every link (and the hosts behind its access
//! links) belongs to exactly one shard. Each shard runs a full [`Cluster`]
//! over the *whole* topology — real firmware and host agents for the hosts
//! it owns, inert stand-ins for the rest — and its engine carries a
//! [`ShardMap`] so flights that reach a foreign link are handed off as
//! [`PortalCrossing`]s instead of crossing locally.
//!
//! Shards advance in conservative time windows (`san_des::sync`): the
//! lookahead is the per-hop head latency, which is exactly the minimum time
//! a crossing adds on top of its emission instant, so no shard can receive
//! work inside a window it already simulated. Crossings are store-and-
//! forward at the boundary (the body re-serializes in the owning shard),
//! a deliberate timing-model coarsening that only exists when `shards > 1`;
//! with one shard no map is installed and the run is byte-identical to the
//! serial engine.

use san_des::sync::{run_sharded, SendCell, ShardSim, SyncStats};
use san_fabric::engine::{EngineStats, PortalCrossing, ShardMap};
use san_fabric::{Endpoint, NodeId, Route, Topology};
use san_sim::Time;

use crate::cluster::{Cluster, ClusterConfig, ClusterEvent, HostAgent, IdleHost};
use crate::nic::{Firmware, UnreliableFirmware};

/// Deterministic switch partition: BFS over switch-switch links from switch
/// 0 (unreachable switches appended in index order), cut into `n` contiguous
/// blocks. Returns the owning shard per switch.
fn partition_switches(topo: &Topology, n: usize) -> Vec<u16> {
    let s = topo.num_switches();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); s];
    for (_, l) in topo.links() {
        if let (Some((a, _)), Some((b, _))) = (l.a.switch(), l.b.switch()) {
            adj[a.idx()].push(b.idx());
            adj[b.idx()].push(a.idx());
        }
    }
    let mut order = Vec::with_capacity(s);
    let mut seen = vec![false; s];
    for root in 0..s {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        let mut q = std::collections::VecDeque::from([root]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    q.push_back(v);
                }
            }
        }
    }
    let block = s.div_ceil(n.max(1));
    let mut shard = vec![0u16; s];
    for (pos, &sw) in order.iter().enumerate() {
        shard[sw] = (pos / block).min(n - 1) as u16;
    }
    shard
}

/// Owning shard per link: a switch-switch link belongs to its `a`-endpoint's
/// switch, an access link to its switch end (so hosts always inject locally).
fn partition_links(topo: &Topology, switch_shard: &[u16]) -> Vec<u16> {
    let mut owner = vec![0u16; topo.num_links()];
    for (id, l) in topo.links() {
        let sw =
            l.a.switch()
                .or_else(|| l.b.switch())
                .map(|(s, _)| s.idx())
                .expect("host-host links do not exist");
        owner[id.idx()] = switch_shard[sw];
    }
    owner
}

/// One shard's world, moved wholesale to a worker thread each window.
struct ShardWorker {
    cluster: SendCell<Cluster>,
}

impl ShardSim for ShardWorker {
    type Msg = Box<PortalCrossing>;

    fn next_time(&mut self) -> Option<u64> {
        self.cluster.0.sim.peek_time().map(|t| t.nanos())
    }

    fn run_window(&mut self, bound: u64, out: &mut Vec<(usize, u64, Self::Msg)>) {
        // `bound` is exclusive, `run_until` inclusive; lookahead ≥ 1 keeps
        // `bound` ≥ 1.
        self.cluster.0.run_until(Time::from_nanos(bound - 1));
        for x in self.cluster.0.shard_out.drain(..) {
            out.push((x.dst_shard as usize, x.ready_at.nanos(), x));
        }
    }

    fn deliver(&mut self, at: u64, msg: Self::Msg) {
        self.cluster
            .0
            .sim
            .schedule(Time::from_nanos(at), ClusterEvent::Portal(msg));
    }
}

/// A partitioned simulation: `shards` full-topology [`Cluster`]s advancing
/// in conservative parallel time windows.
pub struct ShardedCluster {
    workers: Vec<ShardWorker>,
    host_shard: Vec<u16>,
    lookahead_ns: u64,
    /// Accumulated synchronization counters across `run_until` calls.
    pub sync_stats: SyncStats,
}

impl ShardedCluster {
    /// Build `n_shards` shard worlds over `topo`. `make_fw` / `make_host`
    /// are invoked once per host, in its owning shard only; other shards
    /// model that host as an inert NIC (`UnreliableFirmware` + [`IdleHost`])
    /// that can never transmit or receive.
    ///
    /// Each shard gets a private metrics-only [`Telemetry`] registry (the
    /// handle in `cfg` is ignored) so worker threads never share trace
    /// state; aggregate counters with [`ShardedCluster::engine_stats`].
    ///
    /// With `n_shards == 1` no shard map is installed: the run is the
    /// serial engine, byte-identical to a plain [`Cluster`].
    ///
    /// [`Telemetry`]: san_telemetry::Telemetry
    pub fn new(
        topo: Topology,
        cfg: ClusterConfig,
        n_shards: usize,
        mut make_fw: impl FnMut(NodeId) -> Box<dyn Firmware>,
        mut make_host: impl FnMut(NodeId) -> Box<dyn HostAgent>,
    ) -> Self {
        let n_shards = n_shards.clamp(1, topo.num_switches().max(1));
        let switch_shard = partition_switches(&topo, n_shards);
        let link_owner = partition_links(&topo, &switch_shard);
        let n_hosts = topo.num_hosts();
        let host_shard: Vec<u16> = (0..n_hosts)
            .map(|h| {
                let l = topo
                    .link_at(Endpoint::Host(NodeId(h as u16)))
                    .expect("host without access link");
                link_owner[l.idx()]
            })
            .collect();
        let lookahead_ns = cfg.engine.hop_latency.nanos().max(1);
        let workers = (0..n_shards)
            .map(|s| {
                let mut shard_cfg = cfg.clone();
                shard_cfg.telemetry = san_telemetry::Telemetry::new();
                let hosts: Vec<Box<dyn HostAgent>> = (0..n_hosts)
                    .map(|h| -> Box<dyn HostAgent> {
                        if host_shard[h] as usize == s {
                            make_host(NodeId(h as u16))
                        } else {
                            Box::new(IdleHost)
                        }
                    })
                    .collect();
                let mut cluster = Cluster::new(
                    topo.clone(),
                    shard_cfg,
                    |id| {
                        if host_shard[id.idx()] as usize == s {
                            make_fw(id)
                        } else {
                            Box::new(UnreliableFirmware)
                        }
                    },
                    hosts,
                );
                if n_shards > 1 {
                    cluster.engine.set_shard_map(ShardMap {
                        mine: s as u16,
                        link_owner: link_owner.clone(),
                    });
                }
                ShardWorker {
                    cluster: SendCell(cluster),
                }
            })
            .collect();
        Self {
            workers,
            host_shard,
            lookahead_ns,
            sync_stats: SyncStats::default(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The shard owning host `n`.
    pub fn host_shard(&self, n: NodeId) -> usize {
        self.host_shard[n.idx()] as usize
    }

    /// Shard `i`'s world (e.g. to reach an owned host's NIC or telemetry).
    pub fn shard(&self, i: usize) -> &Cluster {
        &self.workers[i].cluster.0
    }

    /// Mutable access to shard `i`'s world.
    pub fn shard_mut(&mut self, i: usize) -> &mut Cluster {
        &mut self.workers[i].cluster.0
    }

    /// Install routes: `f(src, dst)` is consulted exactly once per ordered
    /// host pair, in `src`'s owning shard (foreign NICs stay routeless —
    /// they never transmit).
    pub fn install_routes(&mut self, mut f: impl FnMut(NodeId, NodeId) -> Option<Route>) {
        let n = self.host_shard.len();
        for (s, w) in self.workers.iter_mut().enumerate() {
            let c = &mut w.cluster.0;
            for a in 0..n {
                if self.host_shard[a] as usize != s {
                    continue;
                }
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let (na, nb) = (NodeId(a as u16), NodeId(b as u16));
                    if let Some(r) = f(na, nb) {
                        c.nics[a].core.routes.set(nb, r);
                    }
                }
            }
        }
    }

    /// Advance every shard through `deadline` (inclusive, matching
    /// [`Cluster::run_until`]). Returns the synchronization counters of this
    /// call; they also accumulate in [`ShardedCluster::sync_stats`].
    pub fn run_until(&mut self, deadline: Time) -> SyncStats {
        for w in &mut self.workers {
            w.cluster.0.start();
        }
        let end = deadline.nanos().saturating_add(1);
        let stats = run_sharded(&mut self.workers, self.lookahead_ns, end);
        self.sync_stats.rounds += stats.rounds;
        self.sync_stats.messages += stats.messages;
        stats
    }

    /// Total events processed across shards.
    pub fn events_processed(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.cluster.0.events_processed())
            .sum()
    }

    /// Fabric statistics summed across shards. Deliveries count once (in
    /// the destination's shard); a flight that crosses `k` boundaries
    /// appears in `injected` once plus `k` crossing re-injections' worth of
    /// killed-by-handoff accounting on neither side (handoffs are not
    /// drops), so drop/delivery totals remain comparable to a serial run.
    pub fn engine_stats(&self) -> EngineStats {
        let mut agg = EngineStats::default();
        for w in &self.workers {
            let s = w.cluster.0.engine.stats();
            agg.injected += s.injected;
            agg.delivered += s.delivered;
            agg.path_resets += s.path_resets;
            agg.bytes_delivered += s.bytes_delivered;
            for (d, v) in agg.dropped.iter_mut().zip(s.dropped) {
                *d += v;
            }
        }
        agg
    }

    /// Cross-shard flight handoffs so far (0 with one shard).
    pub fn crossings(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| {
                w.cluster
                    .0
                    .telemetry
                    .counter("fabric.shard_crossings")
                    .get()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{inbox, Collector, StreamSender};

    /// Two 8-port switches with two hosts each, joined by one trunk.
    fn two_switch_world() -> Topology {
        let mut t = Topology::new();
        let hosts = t.add_hosts(4);
        let s0 = t.add_switch(8);
        let s1 = t.add_switch(8);
        t.connect_host(hosts[0], s0, 0);
        t.connect_host(hosts[1], s0, 1);
        t.connect_host(hosts[2], s1, 0);
        t.connect_host(hosts[3], s1, 1);
        t.connect_switches(s0, 2, s1, 2);
        t
    }

    /// Partition is deterministic, covers every switch and link, and puts
    /// each host on the shard of its access switch.
    #[test]
    fn partition_is_deterministic_and_total() {
        let topo = two_switch_world();
        let a = partition_switches(&topo, 2);
        let b = partition_switches(&topo, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), topo.num_switches());
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1);
        let owners = partition_links(&topo, &a);
        assert_eq!(owners.len(), topo.num_links());
    }

    /// Cross-shard traffic delivers the same packets as the serial engine;
    /// every crossing goes through a portal.
    fn run_world(shards: usize) -> (EngineStats, u64, usize) {
        let topo = two_switch_world();
        let rx1 = inbox();
        let rx3 = inbox();
        let (c1, c3) = (rx1.clone(), rx3.clone());
        let mut sc = ShardedCluster::new(
            topo,
            ClusterConfig::default(),
            shards,
            |_| Box::new(UnreliableFirmware),
            move |n| match n.idx() {
                0 => Box::new(StreamSender::new(NodeId(3), 256, 8)),
                2 => Box::new(StreamSender::new(NodeId(1), 256, 8)),
                1 => Box::new(Collector(c1.clone())),
                _ => Box::new(Collector(c3.clone())),
            },
        );
        let routes: Vec<Option<Route>> = {
            let t = sc.shard(0).engine.topology().clone();
            (0..16)
                .map(|i| t.shortest_route(NodeId(i / 4), NodeId(i % 4), |_| true))
                .collect()
        };
        sc.install_routes(|a, b| routes[a.idx() * 4 + b.idx()]);
        sc.run_until(Time::from_nanos(50_000_000));
        let delivered = rx1.borrow().len() + rx3.borrow().len();
        (sc.engine_stats(), sc.crossings(), delivered)
    }

    #[test]
    fn sharded_matches_serial_delivery() {
        let (serial, crossings1, got1) = run_world(1);
        let (sharded, crossings2, got2) = run_world(2);
        assert_eq!(crossings1, 0, "one shard never crosses");
        assert!(crossings2 > 0, "cross-switch traffic must use portals");
        assert_eq!(serial.delivered, 16);
        assert_eq!(sharded.delivered, serial.delivered);
        assert_eq!(sharded.bytes_delivered, serial.bytes_delivered);
        assert_eq!(got1, 16);
        assert_eq!(got2, 16);
    }
}
