//! # san-nic — the LANai-like network interface controller model
//!
//! Models the Myrinet M2M-PCI64A-2 adapter of the paper's testbed (§3.1):
//! a slow control processor (LANai 7), 2 MB of SRAM shared between firmware
//! and packet buffers, and three DMA engines (host↔SRAM over PCI, SRAM↔wire
//! in each direction), plus the host-side interface (send descriptors,
//! message deposit, notifications).
//!
//! The crate separates *mechanism* from *policy*: [`nic::NicCore`] implements
//! what every Myrinet control program does (descriptor pipeline, DMA cost
//! accounting, probe replies), and the [`nic::Firmware`] trait is the hook
//! set a control program implements. The baseline [`nic::UnreliableFirmware`]
//! ships here; the paper's reliable firmware is `san_ft::ReliableFirmware`.
//!
//! [`cluster::Cluster`] assembles hosts, NICs and the fabric into one
//! deterministic event loop.

pub mod buffer;
pub mod cluster;
pub mod nic;
pub mod shard;
pub mod testkit;
pub mod timing;

pub use buffer::{BufId, SendPool};
pub use cluster::{
    Cluster, ClusterConfig, ClusterEvent, HostAgent, HostCtx, HostEvent, IdleHost, NicEvent,
};
pub use nic::{Firmware, Nic, NicCore, NicCtx, NicStats, RouteTable, SendDesc, UnreliableFirmware};
pub use shard::ShardedCluster;
pub use timing::{vmmc_consts, NicTiming};
