//! The cluster world: hosts + NICs + fabric under one event loop.
//!
//! `Cluster` owns the simulation clock/queue, the fabric engine, one [`Nic`]
//! per host and one [`HostAgent`] per host, and dispatches every event to the
//! component it addresses. All cross-component interaction flows through the
//! event queue or the explicit contexts ([`NicCtx`], [`HostCtx`]) — there is
//! no shared mutable state, which is what keeps runs deterministic.

use san_fabric::engine::{Engine, EngineConfig, FabricEvent, FabricOut, PortalCrossing};
use san_fabric::{NodeId, Packet, Route, Topology};
use san_sim::{Duration, Sim, Time};
use san_telemetry::Telemetry;

use crate::buffer::BufId;
use crate::nic::{Firmware, Nic, NicCore, NicCtx, SendDesc};
use crate::timing::NicTiming;

/// Events addressed to a NIC.
#[derive(Debug)]
pub enum NicEvent {
    /// A send buffer's payload reached SRAM (PIO or DMA done); the LANai
    /// still has to build the header.
    TxData {
        /// The buffer.
        buf: BufId,
    },
    /// A send buffer's data is in SRAM and its header is built.
    TxReady {
        /// The buffer.
        buf: BufId,
    },
    /// The network DMA starts reading this (already sealed) packet: inject.
    Inject {
        /// The wire copy.
        pkt: Box<Packet>,
    },
    /// The network DMA finished reading `buf`.
    TxInjected {
        /// The buffer.
        buf: BufId,
    },
    /// The LANai picked a received packet off the receive ring.
    RxProcess {
        /// The packet.
        pkt: Box<Packet>,
    },
    /// A firmware timer fired.
    Timer {
        /// Firmware-defined meaning.
        token: u64,
    },
}

/// Events addressed to a host agent.
#[derive(Debug)]
pub enum HostEvent {
    /// A scheduled wakeup.
    Wake {
        /// Agent-defined meaning.
        token: u64,
    },
    /// A message segment was deposited into host memory.
    Deliver {
        /// The packet (stamps filled in).
        pkt: Box<Packet>,
    },
    /// The NIC finished reading the send data out of host memory.
    SendDone {
        /// The message id from the descriptor.
        msg_id: u64,
    },
    /// The NIC gave up on a send: the destination stayed unreachable
    /// across the firmware's whole remap-retry budget and the packets
    /// were dropped. End-to-end recovery (re-posting once the fabric
    /// heals) is the host's decision, not the NIC's.
    SendFailed {
        /// The message id from the descriptor.
        msg_id: u64,
        /// The unreachable destination.
        dst: NodeId,
    },
}

/// The cluster-wide event type.
#[derive(Debug)]
pub enum ClusterEvent {
    /// Fabric-internal event.
    Fabric(FabricEvent),
    /// NIC event.
    Nic(NodeId, NicEvent),
    /// Host event.
    Host(NodeId, HostEvent),
    /// A flight from another shard becomes ready at our side of a cut link
    /// (sharded runs only; scheduled at the crossing's `ready_at`).
    Portal(Box<PortalCrossing>),
}

impl From<FabricEvent> for ClusterEvent {
    fn from(e: FabricEvent) -> Self {
        ClusterEvent::Fabric(e)
    }
}

/// Context handed to host agents.
pub struct HostCtx<'a> {
    /// This host.
    pub node: NodeId,
    /// This host's NIC.
    pub nic: &'a mut Nic,
    /// Clock + queue.
    pub sim: &'a mut Sim<ClusterEvent>,
    /// The fabric.
    pub engine: &'a mut Engine,
}

impl HostCtx<'_> {
    /// Current time.
    #[inline]
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Schedule a wakeup for this agent.
    pub fn wake_in(&mut self, after: Duration, token: u64) {
        let node = self.node;
        self.sim
            .schedule_in(after, ClusterEvent::Host(node, HostEvent::Wake { token }));
    }

    /// Schedule a wakeup at an absolute time.
    pub fn wake_at(&mut self, at: Time, token: u64) {
        let node = self.node;
        self.sim
            .schedule(at, ClusterEvent::Host(node, HostEvent::Wake { token }));
    }

    /// Post a send descriptor to the NIC.
    pub fn post_send(&mut self, desc: SendDesc) {
        let mut ctx = NicCtx {
            sim: self.sim,
            engine: self.engine,
        };
        self.nic.post_send(&mut ctx, desc);
    }
}

/// A process (or driver state machine) running on a host.
pub trait HostAgent {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut HostCtx);
    /// A scheduled wakeup fired.
    fn on_wake(&mut self, ctx: &mut HostCtx, token: u64);
    /// A message segment arrived in host memory.
    fn on_message(&mut self, ctx: &mut HostCtx, pkt: Packet);
    /// A send's host buffer is reusable.
    fn on_send_done(&mut self, ctx: &mut HostCtx, msg_id: u64);
    /// A send was dropped: the NIC declared `dst` unreachable after
    /// exhausting its remap retries. Unlike `on_send_done`, failure
    /// completions are always delivered (regardless of `SendDesc::notify`)
    /// — a host that opted out of success interrupts still needs to hear
    /// about errors to own end-to-end recovery. Default: ignore, matching
    /// the paper's "pending packets are dropped" baseline.
    fn on_send_failed(&mut self, _ctx: &mut HostCtx, _msg_id: u64, _dst: NodeId) {}
}

/// A do-nothing agent for nodes that only react (e.g. pure receivers whose
/// behaviour lives in the firmware).
#[derive(Debug, Default)]
pub struct IdleHost;

impl HostAgent for IdleHost {
    fn on_start(&mut self, _ctx: &mut HostCtx) {}
    fn on_wake(&mut self, _ctx: &mut HostCtx, _token: u64) {}
    fn on_message(&mut self, _ctx: &mut HostCtx, _pkt: Packet) {}
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// NIC/host cost model.
    pub timing: NicTiming,
    /// Fabric constants.
    pub engine: EngineConfig,
    /// Send buffers per NIC (the paper's queue-size parameter, 2–128).
    pub send_bufs: u16,
    /// RNG seed.
    pub seed: u64,
    /// Observability handle every layer registers into. The default is
    /// metrics-only; pass `Telemetry::with_trace(..)` to record events.
    pub telemetry: Telemetry,
    /// Run the event queue on the legacy binary-heap scheduler instead of
    /// the timing wheel. Both orders are identical by contract; this knob
    /// exists so equivalence tests can prove it trial-by-trial.
    pub legacy_heap: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            timing: NicTiming::default(),
            engine: EngineConfig::default(),
            send_bufs: 32,
            seed: 1,
            telemetry: Telemetry::new(),
            legacy_heap: false,
        }
    }
}

/// The assembled world.
pub struct Cluster {
    /// Clock and event queue.
    pub sim: Sim<ClusterEvent>,
    /// The fabric.
    pub engine: Engine,
    /// One NIC per host.
    pub nics: Vec<Nic>,
    /// One agent per host.
    pub hosts: Vec<Box<dyn HostAgent>>,
    /// The observability handle shared by every layer (same handle the
    /// caller put in [`ClusterConfig::telemetry`]).
    pub telemetry: Telemetry,
    /// Flights that reached a link owned by another shard during the last
    /// run; the sharded driver drains these between windows. Always empty
    /// in unsharded runs.
    pub shard_out: Vec<Box<PortalCrossing>>,
    started: bool,
    events_processed: u64,
}

impl Cluster {
    /// Build a cluster over `topo`. `make_fw` supplies each NIC's control
    /// program; `hosts` must have one agent per host in the topology.
    pub fn new(
        topo: Topology,
        cfg: ClusterConfig,
        mut make_fw: impl FnMut(NodeId) -> Box<dyn Firmware>,
        hosts: Vec<Box<dyn HostAgent>>,
    ) -> Self {
        let n = topo.num_hosts();
        assert_eq!(hosts.len(), n, "one host agent per host");
        let telemetry = cfg.telemetry.clone();
        let engine = Engine::with_telemetry(topo, cfg.engine.clone(), telemetry.clone());
        let nics = (0..n)
            .map(|i| {
                let id = NodeId(i as u16);
                let core = NicCore::with_telemetry(
                    id,
                    cfg.timing.clone(),
                    cfg.send_bufs,
                    n,
                    telemetry.clone(),
                );
                Nic::new(core, make_fw(id))
            })
            .collect();
        Self {
            sim: if cfg.legacy_heap {
                Sim::new_with_legacy_heap(cfg.seed)
            } else {
                Sim::new(cfg.seed)
            },
            engine,
            nics,
            hosts,
            telemetry,
            shard_out: Vec::new(),
            started: false,
            events_processed: 0,
        }
    }

    /// Install shortest-path routes between every host pair (the state of a
    /// freshly, correctly mapped network). Panics if any pair is
    /// disconnected.
    pub fn install_shortest_routes(&mut self) {
        let n = self.nics.len();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (na, nb) = (NodeId(a as u16), NodeId(b as u16));
                let r = self
                    .engine
                    .topology()
                    .shortest_route(na, nb, |_| true)
                    .unwrap_or_else(|| panic!("no route {na} -> {nb}"));
                self.nics[a].core.routes.set(nb, r);
            }
        }
    }

    /// Install routes from an external planner: `f(src, dst)` supplies the
    /// route each NIC loads for each peer (`None` = leave that pair to
    /// on-demand mapping). This is how the `topo` crate's route planner
    /// seeds a cluster with multipath-aware tables.
    pub fn install_routes(&mut self, mut f: impl FnMut(NodeId, NodeId) -> Option<Route>) {
        let n = self.nics.len();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (na, nb) = (NodeId(a as u16), NodeId(b as u16));
                if let Some(r) = f(na, nb) {
                    self.nics[a].core.routes.set(nb, r);
                }
            }
        }
    }

    /// Install UP*/DOWN* (deadlock-free) routes for every host pair — the
    /// full-map baseline.
    pub fn install_updown_routes(&mut self) {
        let topo = self.engine.topology().clone();
        let map =
            san_fabric::updown::UpDownMap::build(&topo, |_| true).expect("topology has switches");
        let table = map.full_table(&topo, |_| true);
        for (a, row) in table.iter().enumerate() {
            for (b, r) in row.iter().enumerate() {
                if a != b {
                    if let Some(r) = r {
                        self.nics[a].core.routes.set(NodeId(b as u16), *r);
                    }
                }
            }
        }
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Run every component's `on_start` hook without processing any events.
    /// The sharded driver calls this before the first synchronization window
    /// so `peek_time` sees the seeded queue; `run_until` does it implicitly.
    pub fn start(&mut self) {
        self.start_if_needed();
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nics.len() {
            let mut ctx = NicCtx {
                sim: &mut self.sim,
                engine: &mut self.engine,
            };
            self.nics[i].on_start(&mut ctx);
        }
        for i in 0..self.hosts.len() {
            let mut ctx = HostCtx {
                node: NodeId(i as u16),
                nic: &mut self.nics[i],
                sim: &mut self.sim,
                engine: &mut self.engine,
            };
            self.hosts[i].on_start(&mut ctx);
        }
    }

    /// Run until the queue drains or `deadline` passes. Returns the time of
    /// the last processed event.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        self.start_if_needed();
        let mut outs: Vec<FabricOut> = Vec::new();
        while let Some(next) = self.peek_time() {
            if next > deadline {
                break;
            }
            let (_, ev) = self.sim.pop().expect("peeked");
            self.events_processed += 1;
            self.dispatch(ev, &mut outs);
        }
        self.sim.now()
    }

    /// Run until no events remain (requires all periodic timers to be
    /// stopped, so mostly useful for unreliable-firmware tests).
    pub fn run_until_idle(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.sim.peek_time()
    }

    fn dispatch(&mut self, ev: ClusterEvent, outs: &mut Vec<FabricOut>) {
        match ev {
            ClusterEvent::Fabric(fe) => {
                outs.clear();
                self.engine.handle(&mut self.sim, fe, outs);
                let drained: Vec<FabricOut> = std::mem::take(outs);
                self.process_outs(drained);
            }
            ClusterEvent::Portal(x) => {
                outs.clear();
                self.engine.inject_crossing(&mut self.sim, *x, outs);
                let drained: Vec<FabricOut> = std::mem::take(outs);
                self.process_outs(drained);
            }
            ClusterEvent::Nic(node, ne) => {
                let mut ctx = NicCtx {
                    sim: &mut self.sim,
                    engine: &mut self.engine,
                };
                self.nics[node.idx()].handle(&mut ctx, ne);
            }
            ClusterEvent::Host(node, he) => {
                let mut ctx = HostCtx {
                    node,
                    nic: &mut self.nics[node.idx()],
                    sim: &mut self.sim,
                    engine: &mut self.engine,
                };
                match he {
                    HostEvent::Wake { token } => self.hosts[node.idx()].on_wake(&mut ctx, token),
                    HostEvent::Deliver { pkt } => self.hosts[node.idx()].on_message(&mut ctx, *pkt),
                    HostEvent::SendDone { msg_id } => {
                        self.hosts[node.idx()].on_send_done(&mut ctx, msg_id)
                    }
                    HostEvent::SendFailed { msg_id, dst } => {
                        self.hosts[node.idx()].on_send_failed(&mut ctx, msg_id, dst)
                    }
                }
            }
        }
    }

    fn process_outs(&mut self, outs: Vec<FabricOut>) {
        for out in outs {
            match out {
                FabricOut::Delivered { node, pkt } => {
                    let mut ctx = NicCtx {
                        sim: &mut self.sim,
                        engine: &mut self.engine,
                    };
                    self.nics[node.idx()].on_delivered(&mut ctx, pkt);
                }
                FabricOut::PathReset { src, pkt } => {
                    let mut ctx = NicCtx {
                        sim: &mut self.sim,
                        engine: &mut self.engine,
                    };
                    self.nics[src.idx()].on_path_reset(&mut ctx, pkt);
                }
                FabricOut::Dropped { .. } => {
                    // Silent on real hardware; engine stats keep it.
                }
                FabricOut::ShardCross(x) => self.shard_out.push(x),
            }
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.hosts.len())
            .field("now", &self.sim.now())
            .field("events", &self.events_processed)
            .finish()
    }
}
