//! The NIC model: LANai processor, DMA engines, send-buffer pool, route
//! table, and the firmware hook points.
//!
//! The *mechanisms* every Myrinet control program shares live here (the
//! descriptor pipeline, DMA bookkeeping, probe replies); the *policy* — what
//! to do when data is ready to transmit, when a packet arrives, when a timer
//! fires — is a [`Firmware`] implementation. `san-nic` ships the baseline
//! [`UnreliableFirmware`] (the paper's "No Fault Tolerance" configuration);
//! the paper's contribution, the reliable firmware with retransmission and
//! on-demand mapping, lives in the `san-ft` crate.

use std::collections::VecDeque;

use bytes::Bytes;
use san_des::intern::{InternId, Interner};
use san_fabric::engine::Engine;
use san_fabric::{NodeId, Packet, PacketFlags, PacketKind, Route};
use san_sim::{Resource, Sim, Time};
use san_telemetry::{Counter, Layer, Telemetry, TraceEvent, TraceKind};

use crate::buffer::{BufId, SendPool};
use crate::cluster::{ClusterEvent, HostEvent, NicEvent};
use crate::timing::NicTiming;

/// A send request as posted by the host library (one packet's worth; VMMC
/// segments larger messages before posting, §3.2).
#[derive(Debug, Clone)]
pub struct SendDesc {
    /// Destination host.
    pub dst: NodeId,
    /// Real payload bytes (may be empty when `logical_len` is used).
    pub payload: Bytes,
    /// Logical payload size when `payload` is empty.
    pub logical_len: u32,
    /// True when the host PIO'd the data into SRAM with the descriptor
    /// (messages ≤ 32 B); otherwise the NIC DMAs it from host memory.
    pub pio: bool,
    /// Notify the host when the data has left host memory.
    pub notify: bool,
    /// VMMC message id.
    pub msg_id: u64,
    /// Segment offset within the message.
    pub msg_offset: u32,
    /// Total message length.
    pub msg_len: u32,
    /// Receiver-side buffer (import id).
    pub recv_buf: u32,
    /// Segment flags (FIRST_SEG / LAST_SEG).
    pub flags: PacketFlags,
    /// Tenant stream this segment belongs to (0 = untagged).
    pub tenant: u16,
    /// When the host began the send (for latency breakdowns).
    pub posted_at: Time,
}

impl SendDesc {
    /// Payload length actually carried.
    pub fn len(&self) -> u32 {
        if self.payload.is_empty() {
            self.logical_len
        } else {
            self.payload.len() as u32
        }
    }
    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-NIC statistics.
///
/// Counters are `Arc`-backed telemetry cells: a default-constructed value
/// is private to the NIC, while [`NicStats::registered`] shares each cell
/// with a [`Telemetry`] registry under `nic.node.<n>.*` (hardware
/// mechanisms) and `ft.node.<n>.*` (reliability-protocol policy), so
/// exporters see live values without a copy step.
#[derive(Debug, Default, Clone)]
pub struct NicStats {
    /// Send descriptors accepted.
    pub descs_posted: Counter,
    /// Data packets put on the wire (first transmissions).
    pub packets_tx: Counter,
    /// Packets retransmitted.
    pub retransmits: Counter,
    /// Packets whose first transmission was suppressed by the error
    /// injector (the paper's §5.1.3 mechanism).
    pub injected_drops: Counter,
    /// CRC-valid packets received (all kinds).
    pub packets_rx: Counter,
    /// Packets dropped for CRC failure.
    pub crc_drops: Counter,
    /// In-order data packets accepted and deposited.
    pub data_accepted: Counter,
    /// Out-of-order packets dropped by the receiver (no buffering, §4.1.1).
    pub ooo_drops: Counter,
    /// Duplicate packets dropped.
    pub dup_drops: Counter,
    /// Stale-generation packets dropped.
    pub stale_gen_drops: Counter,
    /// Explicit ACK packets sent.
    pub acks_tx: Counter,
    /// ACKs processed (explicit + piggy-backed).
    pub acks_rx: Counter,
    /// Retransmission-timer firings.
    pub timer_fires: Counter,
    /// Times the send path blocked on an empty free-buffer list.
    pub blocked_no_buffer: Counter,
    /// Mapping probes sent.
    pub probes_tx: Counter,
    /// Probe replies sent (as the probed host).
    pub probe_replies_tx: Counter,
    /// Path resets observed by this sender.
    pub path_resets: Counter,
    /// Descriptors abandoned because no route exists (unreliable firmware)
    /// or the destination was declared unreachable (reliable firmware).
    pub unroutable: Counter,
    /// Packets dropped because the receive ring was full (the LANai could
    /// not keep up with arrivals — only happens under retransmission storms
    /// or incast overload; recovered like any other loss).
    pub rx_overflow: Counter,
}

impl NicStats {
    /// Stats whose cells are registered in `tel` for node `node`:
    /// hardware-mechanism counters under `nic.node.<n>.*`, reliability-
    /// protocol counters under `ft.node.<n>.*`.
    pub fn registered(tel: &Telemetry, node: NodeId) -> Self {
        let nic = |leaf: &str| tel.counter(&format!("nic.node.{}.{leaf}", node.0));
        let ft = |leaf: &str| tel.counter(&format!("ft.node.{}.{leaf}", node.0));
        Self {
            descs_posted: nic("descs_posted"),
            packets_tx: nic("packets_tx"),
            retransmits: ft("retransmits"),
            injected_drops: ft("injected_drops"),
            packets_rx: nic("packets_rx"),
            crc_drops: nic("crc_drops"),
            data_accepted: nic("data_accepted"),
            ooo_drops: ft("ooo_drops"),
            dup_drops: ft("dup_drops"),
            stale_gen_drops: ft("stale_gen_drops"),
            acks_tx: ft("acks_tx"),
            acks_rx: ft("acks_rx"),
            timer_fires: ft("timer_fires"),
            blocked_no_buffer: nic("blocked_no_buffer"),
            probes_tx: ft("probes_tx"),
            probe_replies_tx: ft("probe_replies_tx"),
            path_resets: nic("path_resets"),
            unroutable: nic("unroutable"),
            rx_overflow: nic("rx_overflow"),
        }
    }
}

/// Per-destination route table. Route buffers are interned: each distinct
/// route is stored once and destinations hold dense `u32` ids, so the
/// dominant per-NIC O(n) cost is 4 bytes per peer plus the (much smaller)
/// set of distinct routes — up*/down* and spare-tree tables repeat routes
/// heavily through shared trunks.
#[derive(Debug, Clone)]
pub struct RouteTable {
    ids: Vec<InternId>,
    pool: Interner<Route>,
}

impl RouteTable {
    /// A table for `n` destinations, all unknown.
    pub fn new(n: usize) -> Self {
        Self {
            ids: vec![InternId::NONE; n],
            pool: Interner::new(),
        }
    }
    /// Route to `dst`, if known.
    pub fn get(&self, dst: NodeId) -> Option<Route> {
        let id = *self.ids.get(dst.idx())?;
        (!id.is_none()).then(|| *self.pool.resolve(id))
    }
    /// Install a route.
    pub fn set(&mut self, dst: NodeId, r: Route) {
        self.ids[dst.idx()] = self.pool.intern(r);
    }
    /// Forget a route (permanent-failure handling).
    pub fn invalidate(&mut self, dst: NodeId) {
        self.ids[dst.idx()] = InternId::NONE;
    }
    /// Number of known routes.
    pub fn known(&self) -> usize {
        self.ids.iter().filter(|id| !id.is_none()).count()
    }
    /// Number of distinct route buffers behind the table.
    pub fn distinct_routes(&self) -> usize {
        self.pool.len()
    }
}

/// The shared mechanisms of a NIC.
#[derive(Debug)]
pub struct NicCore {
    /// This NIC's host id.
    pub node: NodeId,
    /// Cost model.
    pub timing: NicTiming,
    /// The LANai control processor.
    pub cpu: Resource,
    /// Host↔SRAM DMA engine (PCI bus).
    pub host_dma: Resource,
    /// SRAM→network DMA engine.
    pub net_tx: Resource,
    /// Send buffers.
    pub pool: SendPool,
    /// Send descriptors waiting for a free buffer.
    pub pending: VecDeque<SendDesc>,
    /// Known routes.
    pub routes: RouteTable,
    /// Statistics.
    pub stats: NicStats,
    /// Observability handle (shared with the whole simulation).
    pub telemetry: Telemetry,
    /// Recycler for the `Box<Packet>` allocations every wire/RX event
    /// carries through the queue — steady-state traffic reuses the same
    /// handful of boxes instead of hitting the allocator per packet.
    pub pkt_pool: san_des::arena::Pool<Packet>,
    needs_pump: bool,
    /// Packets delivered by the fabric but not yet picked up by the LANai.
    rx_inflight: u32,
    /// The MCP services send descriptors strictly in order: a PIO
    /// descriptor (data available immediately) must not overtake an earlier
    /// DMA descriptor still crossing the PCI bus. This watermark enforces
    /// FIFO hand-off to the transmit policy.
    fifo_tx_ready: Time,
}

/// Mutable simulation context handed to NIC/firmware code.
pub struct NicCtx<'a> {
    /// The event queue / clock.
    pub sim: &'a mut Sim<ClusterEvent>,
    /// The fabric.
    pub engine: &'a mut Engine,
}

impl NicCtx<'_> {
    /// Current time.
    #[inline]
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Inject a packet into the fabric, discarding synchronous drop reports
    /// (the engine's statistics retain them; senders learn of losses only
    /// through the reliability protocol, as on real hardware).
    pub fn inject(&mut self, pkt: Packet) {
        let mut scratch = Vec::new();
        self.engine.inject(self.sim, pkt, &mut scratch);
        // Synchronous outputs can only be drops (dead first link / no link).
        debug_assert!(scratch
            .iter()
            .all(|o| matches!(o, san_fabric::engine::FabricOut::Dropped { .. })));
    }
}

impl NicCore {
    /// Build a NIC core with a private (unexported) telemetry handle.
    pub fn new(node: NodeId, timing: NicTiming, send_bufs: u16, n_nodes: usize) -> Self {
        Self::with_telemetry(node, timing, send_bufs, n_nodes, Telemetry::new())
    }

    /// Build a NIC core whose stats counters are registered in `tel`
    /// (`nic.node.<n>.*` / `ft.node.<n>.*`) and whose DMA/descriptor
    /// activity is traced through it.
    pub fn with_telemetry(
        node: NodeId,
        timing: NicTiming,
        send_bufs: u16,
        n_nodes: usize,
        tel: Telemetry,
    ) -> Self {
        // Receive buffering is a bounded ring: the control program recycles
        // a fixed buffer set no matter how many peers exist (a per-peer
        // reservation would overflow the 2 MB SRAM past ~400 nodes).
        let recv_ring = (n_nodes as u16 + 4).min(64);
        let pool = SendPool::new(send_bufs, recv_ring).expect("NIC configuration exceeds SRAM");
        Self {
            node,
            timing,
            cpu: Resource::new("lanai"),
            host_dma: Resource::new("pci-dma"),
            net_tx: Resource::new("net-tx"),
            pool,
            pending: VecDeque::new(),
            routes: RouteTable::new(n_nodes),
            stats: NicStats::registered(&tel, node),
            telemetry: tel,
            pkt_pool: san_des::arena::Pool::new(64),
            needs_pump: false,
            rx_inflight: 0,
            fifo_tx_ready: Time::ZERO,
        }
    }

    /// Build a NIC-layer trace event about `pkt` observed at this node.
    pub fn trace_pkt(&self, at: Time, kind: TraceKind, pkt: &Packet, aux: u64) -> TraceEvent {
        TraceEvent {
            at_ns: at.nanos(),
            layer: Layer::Nic,
            kind,
            node: self.node.0,
            src: pkt.src.0,
            dst: pkt.dst.0,
            generation: pkt.generation,
            seq: pkt.seq,
            aux,
        }
    }

    /// Take a boxed packet out of a queue event, returning the allocation
    /// to [`NicCore::pkt_pool`] for the next transmit/receive.
    fn unbox_pkt(&mut self, mut b: Box<Packet>) -> Packet {
        let p = std::mem::replace(&mut *b, Packet::new(NodeId(0), NodeId(0), PacketKind::Data));
        self.pkt_pool.put(b);
        p
    }

    /// Firmware can request a descriptor-pump after it frees buffers.
    pub fn request_pump(&mut self) {
        self.needs_pump = true;
    }

    pub(crate) fn take_pump_request(&mut self) -> bool {
        std::mem::take(&mut self.needs_pump)
    }

    /// Put the packet held in `buf` on the wire: reserves the network DMA,
    /// schedules the fabric injection at the DMA start, and reports the DMA
    /// completion to the firmware via [`NicEvent::TxInjected`].
    ///
    /// The packet is cloned (SRAM keeps the original for retransmission) and
    /// sealed with its CRC at the reservation point.
    pub fn transmit(&mut self, ctx: &mut NicCtx, buf: BufId) {
        let now = ctx.now();
        self.transmit_from(ctx, buf, now);
    }

    /// Like [`NicCore::transmit`], but the network DMA may not start before
    /// `earliest` — used by firmware whose processing (charged on the LANai)
    /// must complete before the packet can leave.
    pub fn transmit_from(&mut self, ctx: &mut NicCtx, buf: BufId, earliest: Time) {
        let mut pkt = self.pool.pkt(buf).clone();
        pkt.seal();
        let ser = ctx.engine.serialization(pkt.wire_bytes());
        let (start, done) = self.net_tx.acquire_window(ctx.now().max(earliest), ser);
        self.pool.mark_tx(buf, start);
        let node = self.node;
        let boxed = self.pkt_pool.take_with(move || pkt);
        ctx.sim.schedule(
            start,
            ClusterEvent::Nic(node, NicEvent::Inject { pkt: boxed }),
        );
        ctx.sim
            .schedule(done, ClusterEvent::Nic(node, NicEvent::TxInjected { buf }));
    }

    /// Transmit a packet that does not live in the send pool (explicit ACKs
    /// and mapping probes — short, regenerable control traffic).
    pub fn transmit_unpooled(&mut self, ctx: &mut NicCtx, pkt: Packet) {
        let now = ctx.now();
        self.transmit_unpooled_from(ctx, pkt, now);
    }

    /// [`NicCore::transmit_unpooled`] with an earliest network-DMA start.
    pub fn transmit_unpooled_from(&mut self, ctx: &mut NicCtx, mut pkt: Packet, earliest: Time) {
        pkt.seal();
        let ser = ctx.engine.serialization(pkt.wire_bytes());
        let (start, _done) = self.net_tx.acquire_window(ctx.now().max(earliest), ser);
        let node = self.node;
        let boxed = self.pkt_pool.take_with(move || pkt);
        ctx.sim.schedule(
            start,
            ClusterEvent::Nic(node, NicEvent::Inject { pkt: boxed }),
        );
    }

    /// DMA a received data packet into host memory and notify the process.
    /// Returns the instant the deposit completes.
    pub fn deposit(&mut self, ctx: &mut NicCtx, pkt: Packet) -> Time {
        let now = ctx.now();
        self.deposit_from(ctx, pkt, now)
    }

    /// [`NicCore::deposit`] with an earliest host-DMA start (receive-side
    /// firmware processing must finish first). Returns the completion time.
    pub fn deposit_from(&mut self, ctx: &mut NicCtx, mut pkt: Packet, earliest: Time) -> Time {
        let cost = self.timing.host_dma(pkt.payload_len);
        let (start, done) = self.host_dma.acquire_window(ctx.now().max(earliest), cost);
        let bytes = pkt.payload_len as u64;
        self.telemetry
            .record(self.trace_pkt(start, TraceKind::DmaStart, &pkt, bytes));
        self.telemetry
            .record(self.trace_pkt(done, TraceKind::DmaEnd, &pkt, bytes));
        self.telemetry
            .record(self.trace_pkt(done, TraceKind::PacketDeposited, &pkt, bytes));
        pkt.stamps.deposited = done;
        let seen = done + self.timing.host_notify + self.timing.host_recv_check;
        pkt.stamps.host_seen = seen;
        let node = self.node;
        ctx.sim.schedule(
            seen,
            ClusterEvent::Host(node, HostEvent::Deliver { pkt: Box::new(pkt) }),
        );
        done
    }

    /// Build the standard probe reply (this NIC's identity) for a host probe
    /// and send it back along the recorded reverse route. Standard MCP
    /// behaviour, available under any firmware.
    pub fn reply_to_probe(&mut self, ctx: &mut NicCtx, probe: &Packet) {
        let t = self.cpu.acquire(ctx.now(), self.timing.probe_proc);
        let mut reply = Packet::new(self.node, probe.src, PacketKind::ProbeReply);
        reply.msg_id = probe.msg_id;
        reply.route = probe.reverse_route;
        // Identity payload: the node id (hosts have identities; switches do
        // not — that asymmetry is what makes mapping hard, §6.2).
        reply.payload_len = 8;
        self.stats.probe_replies_tx.hit();
        self.transmit_unpooled_from(ctx, reply, t);
    }
}

/// Policy hooks: what distinguishes one MCP from another.
pub trait Firmware {
    /// Human-readable firmware name (for reports).
    fn name(&self) -> &'static str;

    /// Called once when the cluster starts.
    fn on_start(&mut self, core: &mut NicCore, ctx: &mut NicCtx);

    /// A descriptor's data is in SRAM in `buf`; decide protocol fields and
    /// transmit (or hold).
    fn on_tx_ready(&mut self, core: &mut NicCore, ctx: &mut NicCtx, buf: BufId);

    /// The network DMA finished reading `buf`; the firmware decides whether
    /// the buffer is now free (unreliable) or must await an ACK (reliable).
    fn on_tx_injected(&mut self, core: &mut NicCore, ctx: &mut NicCtx, buf: BufId);

    /// A CRC-valid packet arrived for this NIC.
    fn on_rx(&mut self, core: &mut NicCore, ctx: &mut NicCtx, pkt: Packet);

    /// A firmware timer fired.
    fn on_timer(&mut self, core: &mut NicCore, ctx: &mut NicCtx, token: u64);

    /// The hardware reset this NIC's blocked send path; `pkt` was dropped.
    fn on_path_reset(&mut self, core: &mut NicCore, ctx: &mut NicCtx, pkt: Packet);

    /// No route is known for `desc.dst`. The firmware may queue the
    /// descriptor and start mapping (reliable) or abandon it (unreliable).
    fn on_no_route(&mut self, core: &mut NicCore, ctx: &mut NicCtx, desc: SendDesc);

    /// Narrowing hook so harnesses can reach firmware-specific state
    /// (e.g. the reliable firmware's mapper statistics).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable narrowing hook — harnesses that feed firmware-specific
    /// inputs (e.g. planner route hints to the reliable firmware's mapper).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A NIC: mechanisms + policy.
pub struct Nic {
    /// Shared mechanisms.
    pub core: NicCore,
    /// Loaded control program.
    pub fw: Box<dyn Firmware>,
}

impl Nic {
    /// Assemble a NIC.
    pub fn new(core: NicCore, fw: Box<dyn Firmware>) -> Self {
        Self { core, fw }
    }

    /// Host posts a send descriptor.
    pub fn post_send(&mut self, ctx: &mut NicCtx, desc: SendDesc) {
        self.core.stats.descs_posted.hit();
        self.core.telemetry.record(TraceEvent {
            at_ns: ctx.now().nanos(),
            layer: Layer::Nic,
            kind: TraceKind::PacketEnqueued,
            node: self.core.node.0,
            src: self.core.node.0,
            dst: desc.dst.0,
            generation: 0,
            seq: 0,
            aux: desc.len() as u64,
        });
        self.core.pending.push_back(desc);
        self.pump(ctx);
    }

    /// Drain pending descriptors into send buffers while buffers are free.
    pub fn pump(&mut self, ctx: &mut NicCtx) {
        loop {
            if self.core.pending.is_empty() {
                return;
            }
            // Route check first: a missing route must not consume a buffer.
            let dst = self.core.pending.front().unwrap().dst;
            let Some(route) = self.core.routes.get(dst) else {
                let desc = self.core.pending.pop_front().unwrap();
                self.fw.on_no_route(&mut self.core, ctx, desc);
                continue;
            };
            if self.core.pool.free_count() == 0 {
                self.core.stats.blocked_no_buffer.hit();
                return;
            }
            let desc = self.core.pending.pop_front().unwrap();
            self.admit(ctx, desc, route);
        }
    }

    /// Claim a buffer for `desc` and run the data-to-SRAM pipeline.
    fn admit(&mut self, ctx: &mut NicCtx, desc: SendDesc, route: Route) {
        let core = &mut self.core;
        let now = ctx.now();
        let mut pkt = Packet::new(core.node, desc.dst, PacketKind::Data);
        pkt.route = route;
        pkt.msg_id = desc.msg_id;
        pkt.msg_offset = desc.msg_offset;
        pkt.msg_len = desc.msg_len;
        pkt.recv_buf = desc.recv_buf;
        pkt.flags = desc.flags;
        pkt.tenant = desc.tenant;
        pkt.stamps.host_post = desc.posted_at;
        pkt.stamps.nic_tx_start = now;
        // A descriptor may carry real bytes, a logical size, or both (a real
        // header padded to a bulk logical size): the wire length is the
        // larger of the two.
        pkt.payload_len = desc.logical_len.max(desc.payload.len() as u32);
        pkt.payload = desc.payload.clone();
        let len = pkt.payload_len;
        let buf = core.pool.alloc(pkt).expect("pump checked free_count");
        // Descriptor fetch on the LANai...
        let t1 = core.cpu.acquire(now, core.timing.send_desc_proc);
        // ...then the payload reaches SRAM (PIO: it came with the
        // descriptor; DMA: PCI transfer). Header building is charged when
        // the data actually lands (TxData handler) — pre-booking a future
        // CPU slot here would falsely serialize every later descriptor
        // behind it.
        let data_ready = if desc.pio {
            t1
        } else {
            let (s, d) = core.host_dma.acquire_window(t1, core.timing.host_dma(len));
            let pkt = core.pool.pkt(buf);
            core.telemetry
                .record(core.trace_pkt(s, TraceKind::DmaStart, pkt, len as u64));
            core.telemetry
                .record(core.trace_pkt(d, TraceKind::DmaEnd, pkt, len as u64));
            d
        };
        // FIFO service order (see `fifo_tx_ready`).
        let data_ready = data_ready.max(core.fifo_tx_ready);
        core.fifo_tx_ready = data_ready;
        let node = core.node;
        ctx.sim.schedule(
            data_ready,
            ClusterEvent::Nic(node, NicEvent::TxData { buf }),
        );
        if desc.notify {
            let freed = if desc.pio { t1 } else { data_ready };
            ctx.sim.schedule(
                freed,
                ClusterEvent::Host(
                    node,
                    HostEvent::SendDone {
                        msg_id: desc.msg_id,
                    },
                ),
            );
        }
    }

    /// Receive-ring capacity: arrivals the LANai has not yet dequeued. On
    /// the real NIC this is bounded by SRAM receive buffers; packets beyond
    /// it are lost exactly like wire loss and recovered by retransmission.
    /// It only fills under retransmission storms or severe incast.
    pub const RX_RING: u32 = 64;

    /// A packet arrived from the fabric for this NIC.
    pub fn on_delivered(&mut self, ctx: &mut NicCtx, pkt: Packet) {
        if self.core.rx_inflight >= Self::RX_RING {
            self.core.stats.rx_overflow.hit();
            return;
        }
        self.core.rx_inflight += 1;
        let t1 = self.core.cpu.acquire(ctx.now(), self.core.timing.rx_proc);
        let node = self.core.node;
        let boxed = self.core.pkt_pool.take_with(move || pkt);
        ctx.sim.schedule(
            t1,
            ClusterEvent::Nic(node, NicEvent::RxProcess { pkt: boxed }),
        );
    }

    /// Dispatch a NIC event (called by the cluster loop).
    pub fn handle(&mut self, ctx: &mut NicCtx, ev: NicEvent) {
        match ev {
            NicEvent::TxData { buf } => {
                // Payload is in SRAM: build the header, then hand to the
                // firmware's transmit policy.
                let hdr_done = self
                    .core
                    .cpu
                    .acquire(ctx.now(), self.core.timing.send_hdr_build);
                let node = self.core.node;
                ctx.sim
                    .schedule(hdr_done, ClusterEvent::Nic(node, NicEvent::TxReady { buf }));
            }
            NicEvent::TxReady { buf } => {
                self.fw.on_tx_ready(&mut self.core, ctx, buf);
            }
            NicEvent::Inject { pkt } => {
                let pkt = self.core.unbox_pkt(pkt);
                ctx.inject(pkt);
            }
            NicEvent::TxInjected { buf } => {
                self.fw.on_tx_injected(&mut self.core, ctx, buf);
            }
            NicEvent::RxProcess { pkt } => {
                self.core.rx_inflight = self.core.rx_inflight.saturating_sub(1);
                let pkt = self.core.unbox_pkt(pkt);
                if !pkt.crc_ok() {
                    self.core.stats.crc_drops.hit();
                } else {
                    self.core.stats.packets_rx.hit();
                    if pkt.kind == PacketKind::ProbeHost {
                        // Any host answers a host probe with its identity —
                        // the prober does not know who sits at the end of the
                        // route (that is the point of probing).
                        self.core.reply_to_probe(ctx, &pkt);
                    } else {
                        self.fw.on_rx(&mut self.core, ctx, pkt);
                    }
                }
            }
            NicEvent::Timer { token } => {
                self.fw.on_timer(&mut self.core, ctx, token);
            }
        }
        if self.core.take_pump_request() {
            self.pump(ctx);
        }
    }

    /// Fabric told us our send path was reset (deadlock recovery).
    pub fn on_path_reset(&mut self, ctx: &mut NicCtx, pkt: Packet) {
        self.core.stats.path_resets.hit();
        self.fw.on_path_reset(&mut self.core, ctx, pkt);
        if self.core.take_pump_request() {
            self.pump(ctx);
        }
    }

    /// Start-of-run hook.
    pub fn on_start(&mut self, ctx: &mut NicCtx) {
        self.fw.on_start(&mut self.core, ctx);
    }
}

/// The "No Fault Tolerance" control program: transmit, free the buffer when
/// the network DMA is done, deposit whatever arrives in order of arrival.
/// Network errors are silently fatal to the data (the BIP/FM model, §2).
#[derive(Debug, Default)]
pub struct UnreliableFirmware;

impl Firmware for UnreliableFirmware {
    fn name(&self) -> &'static str {
        "no-ft"
    }

    fn on_start(&mut self, _core: &mut NicCore, _ctx: &mut NicCtx) {}

    fn on_tx_ready(&mut self, core: &mut NicCore, ctx: &mut NicCtx, buf: BufId) {
        core.stats.packets_tx.hit();
        core.transmit(ctx, buf);
    }

    fn on_tx_injected(&mut self, core: &mut NicCore, _ctx: &mut NicCtx, buf: BufId) {
        core.pool.release(buf);
        core.request_pump();
    }

    fn on_rx(&mut self, core: &mut NicCore, ctx: &mut NicCtx, pkt: Packet) {
        match pkt.kind {
            PacketKind::Data | PacketKind::Raw => {
                core.stats.data_accepted.hit();
                core.deposit(ctx, pkt);
            }
            // No reliability protocol: control traffic is ignored.
            _ => {}
        }
    }

    fn on_timer(&mut self, _core: &mut NicCore, _ctx: &mut NicCtx, _token: u64) {}

    fn on_path_reset(&mut self, _core: &mut NicCore, _ctx: &mut NicCtx, _pkt: Packet) {
        // The packet is simply lost.
    }

    fn on_no_route(&mut self, core: &mut NicCore, _ctx: &mut NicCtx, _desc: SendDesc) {
        core.stats.unroutable.hit();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_table_set_get_invalidate() {
        let mut rt = RouteTable::new(4);
        assert_eq!(rt.known(), 0);
        assert!(rt.get(NodeId(2)).is_none());
        rt.set(NodeId(2), Route::from_ports(&[1, 3]));
        assert_eq!(rt.get(NodeId(2)).unwrap().ports(), &[1, 3]);
        assert_eq!(rt.known(), 1);
        rt.set(NodeId(0), Route::from_ports(&[7]));
        assert_eq!(rt.known(), 2);
        rt.invalidate(NodeId(2));
        assert!(rt.get(NodeId(2)).is_none());
        assert_eq!(rt.known(), 1);
        // Out-of-range lookups are None, not panics.
        assert!(rt.get(NodeId(99)).is_none());
    }

    #[test]
    fn send_desc_length_semantics() {
        let mut d = SendDesc {
            dst: NodeId(1),
            payload: Bytes::new(),
            logical_len: 4096,
            pio: false,
            notify: false,
            msg_id: 0,
            msg_offset: 0,
            msg_len: 4096,
            recv_buf: 0,
            flags: PacketFlags::default(),
            tenant: 0,
            posted_at: Time::ZERO,
        };
        assert_eq!(d.len(), 4096);
        assert!(!d.is_empty());
        d.payload = Bytes::from_static(b"xyz");
        assert_eq!(d.len(), 3, "real bytes win over logical length");
        d.payload = Bytes::new();
        d.logical_len = 0;
        assert!(d.is_empty());
    }

    #[test]
    fn nic_core_respects_sram_budget() {
        // 128 buffers + per-node receive buffers is the paper's maximum and
        // must fit; beyond it the constructor panics via SendPool.
        let core = NicCore::new(NodeId(0), NicTiming::default(), 128, 16);
        assert_eq!(core.pool.capacity(), 128);
        assert_eq!(core.stats.packets_tx.get(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds SRAM")]
    fn oversized_pool_panics() {
        let _ = NicCore::new(NodeId(0), NicTiming::default(), 450, 64);
    }
}
