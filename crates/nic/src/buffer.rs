//! NIC SRAM accounting and the send-buffer pool.
//!
//! The LANai 7 has 2 MB of SRAM shared by firmware code, data structures,
//! receive buffers and send buffers (§3.1, §5.1.1). Send buffers are the
//! scarce resource the paper sweeps (2–128 buffers of ~4 KB); a sender that
//! runs out blocks until an acknowledgment frees one, which is exactly the
//! pipelining limit the queue-size experiments measure.
//!
//! Receive buffers are provisioned at one per peer node plus slack, which the
//! paper argues (§5.1.1) is enough that receivers are never overwhelmed; the
//! pool checks the budget but the receive path never blocks.

use san_fabric::Packet;
use san_sim::Time;

/// Total SRAM on the NIC (2 MB).
pub const SRAM_BYTES: u32 = 2 * 1024 * 1024;
/// SRAM reserved for firmware code + data structures.
pub const FIRMWARE_BYTES: u32 = 256 * 1024;
/// Size of one packet buffer (send or receive).
pub const BUF_BYTES: u32 = 4096 + 128; // payload + header slack

/// Index of a send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub u16);

/// One send buffer: either free or holding a packet awaiting transmission
/// or acknowledgment.
#[derive(Debug)]
struct Buf {
    pkt: Option<Packet>,
    /// Last time this packet was put on the wire (for retransmission aging).
    last_tx: Time,
}

/// The send-buffer pool.
#[derive(Debug)]
pub struct SendPool {
    bufs: Vec<Buf>,
    free: Vec<BufId>,
}

/// Error: SRAM budget exceeded.
#[derive(Debug, PartialEq, Eq)]
pub struct SramOverflow {
    /// Bytes requested in total.
    pub requested: u32,
    /// Bytes available for buffers.
    pub available: u32,
}

impl SendPool {
    /// Create a pool of `send_bufs` send buffers, verifying the whole SRAM
    /// budget (firmware + send + `recv_bufs` receive buffers) fits in 2 MB.
    pub fn new(send_bufs: u16, recv_bufs: u16) -> Result<SendPool, SramOverflow> {
        let requested = FIRMWARE_BYTES + (send_bufs as u32 + recv_bufs as u32) * BUF_BYTES;
        if requested > SRAM_BYTES {
            return Err(SramOverflow {
                requested,
                available: SRAM_BYTES,
            });
        }
        let bufs = (0..send_bufs)
            .map(|_| Buf {
                pkt: None,
                last_tx: Time::ZERO,
            })
            .collect();
        let free = (0..send_bufs).rev().map(BufId).collect();
        Ok(SendPool { bufs, free })
    }

    /// Total buffers.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Currently free buffers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Buffers currently held (allocated and not yet released) — zero
    /// after a clean protocol drain, so oracles use it to detect leaks.
    pub fn in_use(&self) -> usize {
        self.bufs.len() - self.free.len()
    }

    /// Fraction of buffers free, in `[0,1]` (drives sender-based feedback).
    pub fn free_fraction(&self) -> f64 {
        self.free.len() as f64 / self.bufs.len() as f64
    }

    /// Claim a buffer for `pkt`. Returns `None` when exhausted (the send
    /// path must block).
    pub fn alloc(&mut self, pkt: Packet) -> Option<BufId> {
        let id = self.free.pop()?;
        let b = &mut self.bufs[id.0 as usize];
        debug_assert!(b.pkt.is_none(), "free-list handed out an occupied buffer");
        b.pkt = Some(pkt);
        b.last_tx = Time::ZERO;
        Some(id)
    }

    /// Release a buffer back to the free list, returning its packet.
    ///
    /// # Panics
    /// Panics if the buffer is already free (double-free is always a bug).
    pub fn release(&mut self, id: BufId) -> Packet {
        let b = &mut self.bufs[id.0 as usize];
        let pkt = b.pkt.take().expect("double free of send buffer");
        self.free.push(id);
        pkt
    }

    /// Borrow the packet held in `id`.
    pub fn pkt(&self, id: BufId) -> &Packet {
        self.bufs[id.0 as usize]
            .pkt
            .as_ref()
            .expect("buffer is free")
    }

    /// Mutably borrow the packet held in `id`.
    pub fn pkt_mut(&mut self, id: BufId) -> &mut Packet {
        self.bufs[id.0 as usize]
            .pkt
            .as_mut()
            .expect("buffer is free")
    }

    /// Record a (re)transmission instant for aging.
    pub fn mark_tx(&mut self, id: BufId, at: Time) {
        self.bufs[id.0 as usize].last_tx = at;
    }

    /// Last transmission instant.
    pub fn last_tx(&self, id: BufId) -> Time {
        self.bufs[id.0 as usize].last_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use san_fabric::{NodeId, PacketKind};

    fn pkt() -> Packet {
        Packet::new(NodeId(0), NodeId(1), PacketKind::Data)
    }

    #[test]
    fn alloc_until_exhausted_then_release() {
        let mut p = SendPool::new(2, 4).unwrap();
        assert_eq!(p.capacity(), 2);
        let a = p.alloc(pkt()).unwrap();
        let b = p.alloc(pkt()).unwrap();
        assert_ne!(a, b);
        assert!(p.alloc(pkt()).is_none(), "pool exhausted");
        assert_eq!(p.free_count(), 0);
        p.release(a);
        assert_eq!(p.free_count(), 1);
        assert!(p.alloc(pkt()).is_some());
    }

    #[test]
    fn allocation_order_is_deterministic() {
        let mut p = SendPool::new(4, 0).unwrap();
        let ids: Vec<u16> = (0..4).map(|_| p.alloc(pkt()).unwrap().0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = SendPool::new(1, 0).unwrap();
        let a = p.alloc(pkt()).unwrap();
        p.release(a);
        p.release(a);
    }

    #[test]
    fn sram_budget_enforced() {
        // 128 send buffers + a few receive buffers fit (the paper's max).
        assert!(SendPool::new(128, 16).is_ok());
        // But you cannot configure more than SRAM allows.
        let err = SendPool::new(400, 100).unwrap_err();
        assert!(err.requested > err.available);
    }

    #[test]
    fn free_fraction_tracks_occupancy() {
        let mut p = SendPool::new(4, 0).unwrap();
        assert_eq!(p.free_fraction(), 1.0);
        let a = p.alloc(pkt()).unwrap();
        let _b = p.alloc(pkt()).unwrap();
        assert_eq!(p.free_fraction(), 0.5);
        p.release(a);
        assert_eq!(p.free_fraction(), 0.75);
    }

    #[test]
    fn mark_and_read_tx_time() {
        let mut p = SendPool::new(1, 0).unwrap();
        let a = p.alloc(pkt()).unwrap();
        assert_eq!(p.last_tx(a), Time::ZERO);
        p.mark_tx(a, Time::from_micros(5));
        assert_eq!(p.last_tx(a), Time::from_micros(5));
        assert_eq!(p.pkt(a).dst, NodeId(1));
    }
}
