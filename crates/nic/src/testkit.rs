//! Reusable simple host agents for tests, examples and harnesses.
//!
//! These model the two ends of the paper's microbenchmarks at the *host
//! agent* level: a streaming sender that posts descriptors as fast as the
//! NIC accepts them, and a collector that records everything deposited into
//! host memory. Richer traffic (ping-pong, application phases) lives in
//! `san-microbench` and `san-svm`.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use san_fabric::{NodeId, Packet, PacketFlags};
use san_sim::Time;

use crate::cluster::{HostAgent, HostCtx};
use crate::nic::SendDesc;
use crate::timing::NicTiming;

/// Shared inbox of deposited packets.
pub type Inbox = Rc<RefCell<Vec<Packet>>>;

/// Make an empty shared inbox.
pub fn inbox() -> Inbox {
    Rc::new(RefCell::new(Vec::new()))
}

/// Build a one-packet send descriptor (PIO for ≤32 B, DMA otherwise).
/// Payload bytes are materialized only for small messages; bulk traffic is
/// timed by logical length.
pub fn make_desc(dst: NodeId, bytes: u32, msg_id: u64, posted_at: Time) -> SendDesc {
    let mut flags = PacketFlags::default();
    flags.set(PacketFlags::FIRST_SEG);
    flags.set(PacketFlags::LAST_SEG);
    SendDesc {
        dst,
        payload: if bytes <= 64 {
            Bytes::from(vec![0xA5u8; bytes as usize])
        } else {
            Bytes::new()
        },
        logical_len: bytes,
        pio: bytes <= 32,
        notify: false,
        msg_id,
        msg_offset: 0,
        msg_len: bytes,
        recv_buf: 0,
        flags,
        tenant: 0,
        posted_at,
    }
}

/// Records every message deposited on this host.
pub struct Collector(pub Inbox);

impl HostAgent for Collector {
    fn on_start(&mut self, _ctx: &mut HostCtx) {}
    fn on_wake(&mut self, _ctx: &mut HostCtx, _token: u64) {}
    fn on_message(&mut self, _ctx: &mut HostCtx, pkt: Packet) {
        self.0.borrow_mut().push(pkt);
    }
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}

/// Posts `count` packets of `bytes` each to `dst` after paying the host-side
/// library cost once; the first message's `posted_at` is the user initiation
/// time (t = 0) so end-to-end latency includes the host send stage.
pub struct StreamSender {
    /// Destination.
    pub dst: NodeId,
    /// Per-packet payload size.
    pub bytes: u32,
    /// Number of packets.
    pub count: u64,
    sent: u64,
}

impl StreamSender {
    /// Build a sender.
    pub fn new(dst: NodeId, bytes: u32, count: u64) -> Self {
        Self {
            dst,
            bytes,
            count,
            sent: 0,
        }
    }
}

impl HostAgent for StreamSender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        let timing = NicTiming::default();
        let cost = if self.bytes <= 32 {
            timing.host_send_pio
        } else {
            timing.host_send_dma
        };
        ctx.wake_in(cost, 0);
    }
    fn on_wake(&mut self, ctx: &mut HostCtx, _token: u64) {
        let posted = ctx.now();
        while self.sent < self.count {
            let stamp = if self.sent == 0 { Time::ZERO } else { posted };
            ctx.post_send(make_desc(self.dst, self.bytes, self.sent, stamp));
            self.sent += 1;
        }
    }
    fn on_message(&mut self, _ctx: &mut HostCtx, _pkt: Packet) {}
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}
