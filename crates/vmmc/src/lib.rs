//! # san-vmmc — Virtual Memory-Mapped Communication
//!
//! The user-level communication layer of the paper's testbed (§3.2):
//! processes *export* regions of their address space (with permissions),
//! remote processes *import* them, and sends deposit data directly into the
//! importer-named remote buffer — no receiver-side copies, no interrupts.
//!
//! Mechanics reproduced here:
//! * sends ≤ 32 B go by programmed I/O (the host CPU writes descriptor and
//!   data together); larger sends are DMA'd by the NIC,
//! * messages larger than 4 KB are segmented into 4 KB packets,
//! * the receive side reassembles segments into the export buffer and
//!   notifies the process once the full message has landed,
//! * export permissions are checked on arrival: a packet naming a bad or
//!   foreign buffer is discarded (the protection model of VMMC),
//! * message-level **deduplication**: the reliability layer guarantees
//!   exactly-once per generation but may redeliver across a generation
//!   reset after a permanent failure; deposits are idempotent, and this
//!   layer additionally swallows duplicate *notifications*.

use std::collections::HashMap;

use bytes::Bytes;
use san_fabric::{NodeId, Packet, PacketFlags, PacketKind};
use san_nic::vmmc_consts::{PIO_LIMIT, SEGMENT_BYTES};
use san_nic::{HostCtx, SendDesc};
use san_sim::Time;
use san_telemetry::{Counter, Telemetry};

/// Identifier of an exported buffer on its owning host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExportId(pub u32);

/// A handle obtained by importing a remote export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportHandle {
    /// The exporting host.
    pub remote: NodeId,
    /// The remote buffer.
    pub export: ExportId,
    /// Size of the remote buffer.
    pub size: u32,
}

/// An exported receive region.
#[derive(Debug)]
struct ExportBuf {
    size: u32,
    /// Backing bytes; written by arriving segments that carry real data.
    data: Vec<u8>,
    /// Hosts allowed to deposit (None = anyone).
    allow: Option<Vec<NodeId>>,
}

/// A fully received message, as reported to the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredMsg {
    /// Sending host.
    pub src: NodeId,
    /// Sender-assigned message id.
    pub msg_id: u64,
    /// The export buffer it landed in.
    pub export: ExportId,
    /// Offset of the message within the buffer.
    pub offset: u32,
    /// Message length.
    pub len: u32,
    /// When the last segment was visible to the process.
    pub completed_at: Time,
}

/// VMMC statistics.
#[derive(Debug, Default, Clone)]
pub struct VmmcStats {
    /// Messages sent.
    pub msgs_sent: Counter,
    /// Segments posted.
    pub segments_sent: Counter,
    /// Messages fully received.
    pub msgs_received: Counter,
    /// Segments rejected by protection checks.
    pub protection_drops: Counter,
    /// Duplicate message notifications swallowed.
    pub dup_msgs: Counter,
}

impl VmmcStats {
    /// Stats whose cells are registered in `tel` under
    /// `vmmc.node.<n>.*`.
    pub fn registered(tel: &Telemetry, node: NodeId) -> Self {
        let v = |leaf: &str| tel.counter(&format!("vmmc.node.{}.{leaf}", node.0));
        Self {
            msgs_sent: v("msgs_sent"),
            segments_sent: v("segments_sent"),
            msgs_received: v("msgs_received"),
            protection_drops: v("protection_drops"),
            dup_msgs: v("dup_msgs"),
        }
    }
}

#[derive(Debug, Default)]
struct Assembly {
    len: u32,
    export: ExportId,
    first_offset: u32,
    seen_offsets: Vec<u32>,
}

/// Per-host VMMC library state. Host agents embed one and feed it arriving
/// packets; it turns them into message-level notifications.
#[derive(Debug)]
pub struct VmmcLib {
    node: NodeId,
    exports: Vec<ExportBuf>,
    next_msg_id: u64,
    assembling: HashMap<(NodeId, u64), Assembly>,
    /// Completed msg ids per peer, for dedup across generation-reset
    /// redelivery. Message ids per (src → this node) stream only grow, so a
    /// high-water mark plus the in-progress set is exact.
    completed_upto: HashMap<NodeId, u64>,
    /// Statistics.
    pub stats: VmmcStats,
}

impl VmmcLib {
    /// Library for one host, with private (unexported) statistics.
    pub fn new(node: NodeId) -> Self {
        Self::with_telemetry(node, &Telemetry::new())
    }

    /// Library whose stats counters are registered in `tel` under
    /// `vmmc.node.<n>.*`.
    pub fn with_telemetry(node: NodeId, tel: &Telemetry) -> Self {
        Self {
            node,
            exports: Vec::new(),
            next_msg_id: 0,
            assembling: HashMap::new(),
            completed_upto: HashMap::new(),
            stats: VmmcStats::registered(tel, node),
        }
    }

    /// Owner host.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Export a receive region of `size` bytes. `allow` restricts which
    /// hosts may deposit into it (`None` = unrestricted).
    pub fn export(&mut self, size: u32, allow: Option<Vec<NodeId>>) -> ExportId {
        self.exports.push(ExportBuf {
            size,
            data: vec![0; size as usize],
            allow,
        });
        ExportId(self.exports.len() as u32 - 1)
    }

    /// Import `export` on `remote`. In real VMMC this is a handshake through
    /// a connection daemon; permission is re-checked on every deposit, so
    /// the simulation performs the binding locally.
    pub fn import(remote: NodeId, export: ExportId, size: u32) -> ImportHandle {
        ImportHandle {
            remote,
            export,
            size,
        }
    }

    /// Read back bytes from an export buffer (what the process sees).
    pub fn read_export(&self, id: ExportId, offset: u32, len: u32) -> &[u8] {
        let b = &self.exports[id.0 as usize];
        &b.data[offset as usize..(offset + len) as usize]
    }

    /// Send `data` into the imported remote buffer at `offset`. Returns the
    /// message id. Segments > 4 KB; PIO for ≤ 32 B.
    pub fn send(&mut self, ctx: &mut HostCtx, to: ImportHandle, offset: u32, data: Bytes) -> u64 {
        assert!(
            offset as usize + data.len() <= to.size as usize,
            "send overruns the imported buffer: {} + {} > {}",
            offset,
            data.len(),
            to.size
        );
        self.send_inner(ctx, to, offset, data.len() as u32, Some(data))
    }

    /// Send `len` logical bytes (no real payload materialized) — used by
    /// bulk benchmarks where only timing matters.
    pub fn send_logical(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        len: u32,
    ) -> u64 {
        assert!(offset + len <= to.size, "send overruns the imported buffer");
        self.send_inner(ctx, to, offset, len, None)
    }

    /// Send a real-byte `header` padded with `pad` logical bytes (one
    /// message of total length `header.len() + pad`). Used for protocol
    /// messages whose control part is real data but whose bulk payload only
    /// needs to cost wire/DMA time.
    pub fn send_padded(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        header: Bytes,
        pad: u32,
    ) -> u64 {
        let total = header.len() as u32 + pad;
        assert!(
            offset + total <= to.size,
            "send overruns the imported buffer"
        );
        self.send_inner(ctx, to, offset, total, Some(header))
    }

    fn send_inner(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        len: u32,
        data: Option<Bytes>,
    ) -> u64 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.msgs_sent.hit();
        let posted_at = ctx.now();
        let mut off = 0u32;
        loop {
            let seg = (len - off).min(SEGMENT_BYTES);
            let mut flags = PacketFlags::default();
            if off == 0 {
                flags.set(PacketFlags::FIRST_SEG);
            }
            if off + seg >= len {
                flags.set(PacketFlags::LAST_SEG);
            }
            // Real bytes may cover only a prefix of the message (padded
            // sends): each segment carries whatever real bytes fall in its
            // range.
            let payload = match &data {
                Some(d) if len > 0 => {
                    let start = (off as usize).min(d.len());
                    let end = ((off + seg) as usize).min(d.len());
                    if start < end {
                        d.slice(start..end)
                    } else {
                        Bytes::new()
                    }
                }
                _ => Bytes::new(),
            };
            let desc = SendDesc {
                dst: to.remote,
                payload,
                logical_len: seg,
                pio: len <= PIO_LIMIT,
                notify: false,
                msg_id,
                // The wire offset is buffer-relative so deposits land at the
                // right place without a completion pass.
                msg_offset: offset + off,
                msg_len: len,
                recv_buf: to.export.0,
                flags,
                posted_at,
            };
            self.stats.segments_sent.hit();
            ctx.post_send(desc);
            off += seg;
            if off >= len {
                break;
            }
        }
        msg_id
    }

    /// Feed one deposited packet; returns the completed message when this
    /// segment was the last missing piece.
    pub fn on_packet(&mut self, pkt: &Packet) -> Option<DeliveredMsg> {
        if pkt.kind != PacketKind::Data && pkt.kind != PacketKind::Raw {
            return None;
        }
        // Protection: the named export must exist, the sender must be
        // allowed, and the segment must fit.
        let Some(buf) = self.exports.get_mut(pkt.recv_buf as usize) else {
            self.stats.protection_drops.hit();
            return None;
        };
        if let Some(allow) = &buf.allow {
            if !allow.contains(&pkt.src) {
                self.stats.protection_drops.hit();
                return None;
            }
        }
        let end = pkt.msg_offset as u64 + pkt.payload_len as u64;
        if end > buf.size as u64 {
            self.stats.protection_drops.hit();
            return None;
        }
        // Duplicate of an already-completed message (redelivery across a
        // generation reset): deposit is idempotent, notification swallowed.
        if let Some(&upto) = self.completed_upto.get(&pkt.src) {
            if pkt.msg_id <= upto && !self.assembling.contains_key(&(pkt.src, pkt.msg_id)) {
                self.stats.dup_msgs.hit();
                return None;
            }
        }
        // Deposit real bytes (direct write into the export region).
        if !pkt.payload.is_empty() {
            let dst =
                &mut buf.data[pkt.msg_offset as usize..pkt.msg_offset as usize + pkt.payload.len()];
            dst.copy_from_slice(&pkt.payload);
        }
        let key = (pkt.src, pkt.msg_id);
        let a = self.assembling.entry(key).or_insert_with(|| Assembly {
            len: pkt.msg_len,
            export: ExportId(pkt.recv_buf),
            first_offset: 0,
            seen_offsets: Vec::new(),
        });
        if pkt.flags.has(PacketFlags::FIRST_SEG) {
            a.first_offset = pkt.msg_offset;
        }
        if a.seen_offsets.contains(&pkt.msg_offset) {
            return None; // segment-level duplicate within an incomplete message
        }
        a.seen_offsets.push(pkt.msg_offset);
        let need = if a.len == 0 {
            1
        } else {
            a.len.div_ceil(SEGMENT_BYTES)
        };
        if (a.seen_offsets.len() as u32) < need {
            return None;
        }
        let a = self.assembling.remove(&key).unwrap();
        let upto = self.completed_upto.entry(pkt.src).or_insert(0);
        *upto = (*upto).max(pkt.msg_id);
        self.stats.msgs_received.hit();
        Some(DeliveredMsg {
            src: pkt.src,
            msg_id: pkt.msg_id,
            export: a.export,
            offset: a.first_offset,
            len: a.len,
            completed_at: pkt.stamps.host_seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(src: u16, msg_id: u64, offset: u32, len: u32, msg_len: u32, buf: u32) -> Packet {
        let mut p = Packet::new(NodeId(src), NodeId(0), PacketKind::Data);
        p.msg_id = msg_id;
        p.msg_offset = offset;
        p.msg_len = msg_len;
        p.recv_buf = buf;
        p.payload_len = len;
        let mut flags = PacketFlags::default();
        if offset == 0 {
            flags.set(PacketFlags::FIRST_SEG);
        }
        if offset + len >= msg_len {
            flags.set(PacketFlags::LAST_SEG);
        }
        p.flags = flags;
        p
    }

    #[test]
    fn export_and_read_roundtrip() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(128, None);
        let mut p = seg(1, 0, 0, 5, 5, e.0);
        p.payload = Bytes::from_static(b"hello");
        let msg = lib.on_packet(&p).expect("single segment completes");
        assert_eq!(msg.len, 5);
        assert_eq!(lib.read_export(e, 0, 5), b"hello");
    }

    #[test]
    fn segmented_message_completes_on_last_segment() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(16384, None);
        let msg_len = 4096 * 2 + 1000;
        assert!(lib.on_packet(&seg(1, 7, 0, 4096, msg_len, e.0)).is_none());
        assert!(lib
            .on_packet(&seg(1, 7, 4096, 4096, msg_len, e.0))
            .is_none());
        let done = lib
            .on_packet(&seg(1, 7, 8192, 1000, msg_len, e.0))
            .expect("complete");
        assert_eq!(done.len, msg_len);
        assert_eq!(done.msg_id, 7);
        assert_eq!(lib.stats.msgs_received.get(), 1);
    }

    #[test]
    fn protection_rejects_bad_buffer_and_forbidden_host() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, Some(vec![NodeId(2)]));
        // Unknown buffer id.
        assert!(lib.on_packet(&seg(2, 0, 0, 8, 8, 99)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 1);
        // Host 1 is not allowed.
        assert!(lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 2);
        // Host 2 is allowed.
        assert!(lib.on_packet(&seg(2, 0, 0, 8, 8, e.0)).is_some());
        // Overrun rejected.
        assert!(lib.on_packet(&seg(2, 1, 60, 8, 8, e.0)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 3);
    }

    #[test]
    fn duplicate_completed_message_swallowed() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, None);
        assert!(lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_some());
        assert!(
            lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_none(),
            "dup swallowed"
        );
        assert_eq!(lib.stats.dup_msgs.get(), 1);
        // A later message still goes through.
        assert!(lib.on_packet(&seg(1, 1, 0, 8, 8, e.0)).is_some());
    }

    #[test]
    fn duplicate_segment_within_message_ignored() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(16384, None);
        let msg_len = 8192;
        assert!(lib.on_packet(&seg(1, 3, 0, 4096, msg_len, e.0)).is_none());
        assert!(
            lib.on_packet(&seg(1, 3, 0, 4096, msg_len, e.0)).is_none(),
            "same segment twice"
        );
        let done = lib.on_packet(&seg(1, 3, 4096, 4096, msg_len, e.0));
        assert!(
            done.is_some(),
            "completes exactly when all distinct segments arrived"
        );
    }

    #[test]
    fn interleaved_messages_from_two_sources_assemble_independently() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(32768, None);
        assert!(lib.on_packet(&seg(1, 0, 0, 4096, 8192, e.0)).is_none());
        assert!(lib.on_packet(&seg(2, 0, 0, 4096, 8192, e.0)).is_none());
        assert!(lib.on_packet(&seg(2, 0, 4096, 4096, 8192, e.0)).is_some());
        assert!(lib.on_packet(&seg(1, 0, 4096, 4096, 8192, e.0)).is_some());
        assert_eq!(lib.stats.msgs_received.get(), 2);
    }

    #[test]
    fn deposits_land_at_buffer_offsets() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, None);
        let mut p = seg(1, 0, 10, 4, 4, e.0);
        // A message written at buffer offset 10 (sender offset parameter):
        // the wire carries msg_offset = 10 with FIRST_SEG.
        p.flags.set(PacketFlags::FIRST_SEG);
        p.flags.set(PacketFlags::LAST_SEG);
        p.payload = Bytes::from_static(b"ABCD");
        let done = lib.on_packet(&p).unwrap();
        assert_eq!(done.offset, 10);
        assert_eq!(lib.read_export(e, 10, 4), b"ABCD");
    }
}
