//! # san-vmmc — Virtual Memory-Mapped Communication
//!
//! The user-level communication layer of the paper's testbed (§3.2):
//! processes *export* regions of their address space (with permissions),
//! remote processes *import* them, and sends deposit data directly into the
//! importer-named remote buffer — no receiver-side copies, no interrupts.
//!
//! Mechanics reproduced here:
//! * sends ≤ 32 B go by programmed I/O (the host CPU writes descriptor and
//!   data together); larger sends are DMA'd by the NIC,
//! * messages larger than 4 KB are segmented into 4 KB packets,
//! * the receive side reassembles segments into the export buffer and
//!   notifies the process once the full message has landed,
//! * export permissions are checked on arrival: a packet naming a bad or
//!   foreign buffer is discarded (the protection model of VMMC),
//! * message-level **deduplication**: the reliability layer guarantees
//!   exactly-once per generation but may redeliver across a generation
//!   reset after a permanent failure; deposits are idempotent, and this
//!   layer additionally swallows duplicate *notifications*.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bytes::Bytes;
use san_fabric::{NodeId, Packet, PacketFlags, PacketKind};
use san_nic::vmmc_consts::{PIO_LIMIT, SEGMENT_BYTES};
use san_nic::{HostCtx, SendDesc};
use san_sim::{Duration, Time};
use san_telemetry::{Counter, Telemetry};

/// Identifier of an exported buffer on its owning host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExportId(pub u32);

/// A handle obtained by importing a remote export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportHandle {
    /// The exporting host.
    pub remote: NodeId,
    /// The remote buffer.
    pub export: ExportId,
    /// Size of the remote buffer.
    pub size: u32,
}

/// An exported receive region.
#[derive(Debug)]
struct ExportBuf {
    size: u32,
    /// Backing bytes; written by arriving segments that carry real data.
    data: Vec<u8>,
    /// Hosts allowed to deposit (None = anyone).
    allow: Option<Vec<NodeId>>,
}

/// A fully received message, as reported to the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredMsg {
    /// Sending host.
    pub src: NodeId,
    /// Sender-assigned message id.
    pub msg_id: u64,
    /// The export buffer it landed in.
    pub export: ExportId,
    /// Offset of the message within the buffer.
    pub offset: u32,
    /// Message length.
    pub len: u32,
    /// Tenant stream the message belongs to (from the completing segment's
    /// tag; 0 = untagged).
    pub tenant: u16,
    /// When the last segment was visible to the process.
    pub completed_at: Time,
}

/// VMMC statistics.
#[derive(Debug, Default, Clone)]
pub struct VmmcStats {
    /// Messages sent.
    pub msgs_sent: Counter,
    /// Segments posted.
    pub segments_sent: Counter,
    /// Messages fully received.
    pub msgs_received: Counter,
    /// Segments rejected by protection checks.
    pub protection_drops: Counter,
    /// Duplicate message notifications swallowed.
    pub dup_msgs: Counter,
    /// End-to-end recovery: messages re-posted after a `SendFailed`.
    pub reposts: Counter,
    /// End-to-end recovery: messages given up on (attempt budget spent or
    /// no longer retained).
    pub abandoned: Counter,
}

impl VmmcStats {
    /// Stats whose cells are registered in `tel` under
    /// `vmmc.node.<n>.*`.
    pub fn registered(tel: &Telemetry, node: NodeId) -> Self {
        let v = |leaf: &str| tel.counter(&format!("vmmc.node.{}.{leaf}", node.0));
        Self {
            msgs_sent: v("msgs_sent"),
            segments_sent: v("segments_sent"),
            msgs_received: v("msgs_received"),
            protection_drops: v("protection_drops"),
            dup_msgs: v("dup_msgs"),
            reposts: v("reposts"),
            abandoned: v("abandoned"),
        }
    }
}

/// Host-level end-to-end recovery policy: what to do when the NIC reports
/// `SendFailed` (destination unreachable across the whole remap budget).
/// The paper's baseline is silent drop; with a policy installed the library
/// re-posts the message — bounded attempts, exponential backoff — once the
/// caller drives [`VmmcLib::flush_retries`] at the returned times. Re-posts
/// reuse the original `msg_id`, so the receiver's exact dedup makes them
/// idempotent even when the first copy (or part of it) did land.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Re-posts allowed per message before it is abandoned.
    pub max_attempts: u32,
    /// Backoff before the first re-post; doubles per subsequent failure of
    /// the same message.
    pub base_backoff: Duration,
    /// How many recent sends to retain for possible re-posting. Memory
    /// bound; a failure arriving for an evicted message is abandoned.
    pub retain: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_backoff: Duration::from_micros(500),
            retain: 4096,
        }
    }
}

/// A send retained for possible end-to-end re-posting.
#[derive(Debug)]
struct RetainedSend {
    to: ImportHandle,
    offset: u32,
    len: u32,
    data: Option<Bytes>,
    attempts: u32,
    /// Scheduled re-post time after a failure; `None` while in flight.
    due: Option<Time>,
}

#[derive(Debug)]
struct RecoveryState {
    cfg: RecoveryConfig,
    retained: BTreeMap<u64, RetainedSend>,
}

#[derive(Debug, Default)]
struct Assembly {
    len: u32,
    export: ExportId,
    first_offset: u32,
    seen_offsets: Vec<u32>,
}

/// Bound on out-of-order completion ids tracked per source. Exceeding it
/// (possible only when thousands of abandoned gaps accumulate) degrades to
/// the high-water behavior for the evicted gap.
const COMPLETED_ABOVE_CAP: usize = 4096;

/// Exactly which message ids from one source have completed. Ids complete
/// in order on a healthy stream (one contiguous prefix, nothing stored);
/// end-to-end re-posting after a `SendFailed` can complete an *older* id
/// after a newer one, so the contiguous prefix is supplemented by an exact
/// set of out-of-order completions — this is what makes same-`msg_id`
/// re-posts idempotent instead of falsely swallowed.
#[derive(Debug, Default)]
struct CompletedIds {
    /// Smallest id not known to be complete (prefix `0..next` is done).
    next: u64,
    /// Completed ids beyond the contiguous prefix.
    above: BTreeSet<u64>,
}

impl CompletedIds {
    fn contains(&self, id: u64) -> bool {
        id < self.next || self.above.contains(&id)
    }

    fn insert(&mut self, id: u64) {
        if id < self.next {
            return;
        }
        if id == self.next {
            self.next += 1;
            while self.above.remove(&self.next) {
                self.next += 1;
            }
        } else {
            self.above.insert(id);
            if self.above.len() > COMPLETED_ABOVE_CAP {
                let evicted = self.above.pop_first().unwrap();
                self.next = self.next.max(evicted + 1);
                while self.above.remove(&self.next) {
                    self.next += 1;
                }
            }
        }
    }
}

/// Per-host VMMC library state. Host agents embed one and feed it arriving
/// packets; it turns them into message-level notifications.
#[derive(Debug)]
pub struct VmmcLib {
    node: NodeId,
    exports: Vec<ExportBuf>,
    next_msg_id: u64,
    assembling: HashMap<(NodeId, u64), Assembly>,
    /// Completed msg ids per peer, for dedup across generation-reset
    /// redelivery and end-to-end re-posting.
    completed: HashMap<NodeId, CompletedIds>,
    /// End-to-end recovery policy; `None` = the paper's silent-drop default.
    recovery: Option<RecoveryState>,
    /// Tenant tag stamped on every outgoing segment (0 = untagged).
    tenant: u16,
    /// Statistics.
    pub stats: VmmcStats,
}

impl VmmcLib {
    /// Library for one host, with private (unexported) statistics.
    pub fn new(node: NodeId) -> Self {
        Self::with_telemetry(node, &Telemetry::new())
    }

    /// Library whose stats counters are registered in `tel` under
    /// `vmmc.node.<n>.*`.
    pub fn with_telemetry(node: NodeId, tel: &Telemetry) -> Self {
        Self {
            node,
            exports: Vec::new(),
            next_msg_id: 0,
            assembling: HashMap::new(),
            completed: HashMap::new(),
            recovery: None,
            tenant: 0,
            stats: VmmcStats::registered(tel, node),
        }
    }

    /// Owner host.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Tag every subsequent send with `tenant` (multi-tenant workload
    /// attribution; 0 = untagged legacy traffic).
    pub fn set_tenant(&mut self, tenant: u16) {
        self.tenant = tenant;
    }

    /// The tenant tag currently stamped on outgoing segments.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// Install an end-to-end recovery policy: sends are retained and, on a
    /// `SendFailed` completion, re-posted with bounded, backoff-paced
    /// attempts (drive with [`VmmcLib::on_send_failed`] +
    /// [`VmmcLib::flush_retries`]).
    pub fn enable_recovery(&mut self, cfg: RecoveryConfig) {
        self.recovery = Some(RecoveryState {
            cfg,
            retained: BTreeMap::new(),
        });
    }

    /// Is an end-to-end recovery policy installed?
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Messages currently awaiting a scheduled re-post.
    pub fn retries_pending(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| {
            r.retained.values().filter(|p| p.due.is_some()).count()
        })
    }

    /// The NIC reported `msg_id` dropped as unreachable. Schedules a
    /// re-post (exponential backoff, bounded attempts) and returns the
    /// backoff delay — the caller must arrange a [`VmmcLib::flush_retries`]
    /// call after it elapses. Returns `None` when the message is abandoned
    /// (budget spent, not retained, or no recovery policy).
    pub fn on_send_failed(&mut self, now: Time, msg_id: u64) -> Option<Duration> {
        let r = self.recovery.as_mut()?;
        let Some(p) = r.retained.get_mut(&msg_id) else {
            self.stats.abandoned.hit();
            return None;
        };
        if p.attempts >= r.cfg.max_attempts {
            r.retained.remove(&msg_id);
            self.stats.abandoned.hit();
            return None;
        }
        p.attempts += 1;
        let delay = r.cfg.base_backoff * (1u64 << (p.attempts - 1).min(16));
        p.due = Some(now + delay);
        Some(delay)
    }

    /// Re-post every message whose backoff has elapsed (same `msg_id`: the
    /// receiver's exact dedup makes redelivery idempotent). Returns the
    /// time until the earliest still-pending retry, if any.
    pub fn flush_retries(&mut self, ctx: &mut HostCtx) -> Option<Duration> {
        let now = ctx.now();
        let Some(r) = &mut self.recovery else {
            return None;
        };
        let due_now: Vec<u64> = r
            .retained
            .iter()
            .filter(|(_, p)| p.due.is_some_and(|t| t <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in due_now {
            let r = self.recovery.as_mut().unwrap();
            let p = r.retained.get_mut(&id).unwrap();
            p.due = None;
            let (to, offset, len, data) = (p.to, p.offset, p.len, p.data.clone());
            self.stats.reposts.hit();
            self.post_segments(ctx, to, offset, len, data.as_ref(), id);
        }
        let r = self.recovery.as_ref().unwrap();
        r.retained
            .values()
            .filter_map(|p| p.due)
            .min()
            .map(|t| t.since(now))
    }

    /// Export a receive region of `size` bytes. `allow` restricts which
    /// hosts may deposit into it (`None` = unrestricted).
    pub fn export(&mut self, size: u32, allow: Option<Vec<NodeId>>) -> ExportId {
        self.exports.push(ExportBuf {
            size,
            data: vec![0; size as usize],
            allow,
        });
        ExportId(self.exports.len() as u32 - 1)
    }

    /// Import `export` on `remote`. In real VMMC this is a handshake through
    /// a connection daemon; permission is re-checked on every deposit, so
    /// the simulation performs the binding locally.
    pub fn import(remote: NodeId, export: ExportId, size: u32) -> ImportHandle {
        ImportHandle {
            remote,
            export,
            size,
        }
    }

    /// Read back bytes from an export buffer (what the process sees).
    pub fn read_export(&self, id: ExportId, offset: u32, len: u32) -> &[u8] {
        let b = &self.exports[id.0 as usize];
        &b.data[offset as usize..(offset + len) as usize]
    }

    /// Send `data` into the imported remote buffer at `offset`. Returns the
    /// message id. Segments > 4 KB; PIO for ≤ 32 B.
    pub fn send(&mut self, ctx: &mut HostCtx, to: ImportHandle, offset: u32, data: Bytes) -> u64 {
        assert!(
            offset as usize + data.len() <= to.size as usize,
            "send overruns the imported buffer: {} + {} > {}",
            offset,
            data.len(),
            to.size
        );
        self.send_inner(ctx, to, offset, data.len() as u32, Some(data))
    }

    /// Send `len` logical bytes (no real payload materialized) — used by
    /// bulk benchmarks where only timing matters.
    pub fn send_logical(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        len: u32,
    ) -> u64 {
        assert!(offset + len <= to.size, "send overruns the imported buffer");
        self.send_inner(ctx, to, offset, len, None)
    }

    /// Send a real-byte `header` padded with `pad` logical bytes (one
    /// message of total length `header.len() + pad`). Used for protocol
    /// messages whose control part is real data but whose bulk payload only
    /// needs to cost wire/DMA time.
    pub fn send_padded(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        header: Bytes,
        pad: u32,
    ) -> u64 {
        let total = header.len() as u32 + pad;
        assert!(
            offset + total <= to.size,
            "send overruns the imported buffer"
        );
        self.send_inner(ctx, to, offset, total, Some(header))
    }

    fn send_inner(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        len: u32,
        data: Option<Bytes>,
    ) -> u64 {
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.msgs_sent.hit();
        if let Some(r) = &mut self.recovery {
            r.retained.insert(
                msg_id,
                RetainedSend {
                    to,
                    offset,
                    len,
                    data: data.clone(),
                    attempts: 0,
                    due: None,
                },
            );
            while r.retained.len() > r.cfg.retain {
                r.retained.pop_first();
            }
        }
        self.post_segments(ctx, to, offset, len, data.as_ref(), msg_id);
        msg_id
    }

    /// Segment a message and post its descriptors (shared by first sends
    /// and recovery re-posts, which reuse the original `msg_id`).
    fn post_segments(
        &mut self,
        ctx: &mut HostCtx,
        to: ImportHandle,
        offset: u32,
        len: u32,
        data: Option<&Bytes>,
        msg_id: u64,
    ) {
        let posted_at = ctx.now();
        let mut off = 0u32;
        loop {
            let seg = (len - off).min(SEGMENT_BYTES);
            let mut flags = PacketFlags::default();
            if off == 0 {
                flags.set(PacketFlags::FIRST_SEG);
            }
            if off + seg >= len {
                flags.set(PacketFlags::LAST_SEG);
            }
            // Real bytes may cover only a prefix of the message (padded
            // sends): each segment carries whatever real bytes fall in its
            // range.
            let payload = match data {
                Some(d) if len > 0 => {
                    let start = (off as usize).min(d.len());
                    let end = ((off + seg) as usize).min(d.len());
                    if start < end {
                        d.slice(start..end)
                    } else {
                        Bytes::new()
                    }
                }
                _ => Bytes::new(),
            };
            let desc = SendDesc {
                dst: to.remote,
                payload,
                logical_len: seg,
                pio: len <= PIO_LIMIT,
                notify: false,
                msg_id,
                // The wire offset is buffer-relative so deposits land at the
                // right place without a completion pass.
                msg_offset: offset + off,
                msg_len: len,
                recv_buf: to.export.0,
                flags,
                tenant: self.tenant,
                posted_at,
            };
            self.stats.segments_sent.hit();
            ctx.post_send(desc);
            off += seg;
            if off >= len {
                break;
            }
        }
    }

    /// Feed one deposited packet; returns the completed message when this
    /// segment was the last missing piece.
    pub fn on_packet(&mut self, pkt: &Packet) -> Option<DeliveredMsg> {
        if pkt.kind != PacketKind::Data && pkt.kind != PacketKind::Raw {
            return None;
        }
        // Protection: the named export must exist, the sender must be
        // allowed, and the segment must fit.
        let Some(buf) = self.exports.get_mut(pkt.recv_buf as usize) else {
            self.stats.protection_drops.hit();
            return None;
        };
        if let Some(allow) = &buf.allow {
            if !allow.contains(&pkt.src) {
                self.stats.protection_drops.hit();
                return None;
            }
        }
        let end = pkt.msg_offset as u64 + pkt.payload_len as u64;
        if end > buf.size as u64 {
            self.stats.protection_drops.hit();
            return None;
        }
        // Duplicate of an already-completed message (redelivery across a
        // generation reset, or an end-to-end re-post of a message whose
        // first copy did land): deposit is idempotent, notification
        // swallowed.
        if let Some(c) = self.completed.get(&pkt.src) {
            if c.contains(pkt.msg_id) && !self.assembling.contains_key(&(pkt.src, pkt.msg_id)) {
                self.stats.dup_msgs.hit();
                return None;
            }
        }
        // Deposit real bytes (direct write into the export region).
        if !pkt.payload.is_empty() {
            let dst =
                &mut buf.data[pkt.msg_offset as usize..pkt.msg_offset as usize + pkt.payload.len()];
            dst.copy_from_slice(&pkt.payload);
        }
        let key = (pkt.src, pkt.msg_id);
        let a = self.assembling.entry(key).or_insert_with(|| Assembly {
            len: pkt.msg_len,
            export: ExportId(pkt.recv_buf),
            first_offset: 0,
            seen_offsets: Vec::new(),
        });
        if pkt.flags.has(PacketFlags::FIRST_SEG) {
            a.first_offset = pkt.msg_offset;
        }
        if a.seen_offsets.contains(&pkt.msg_offset) {
            return None; // segment-level duplicate within an incomplete message
        }
        a.seen_offsets.push(pkt.msg_offset);
        let need = if a.len == 0 {
            1
        } else {
            a.len.div_ceil(SEGMENT_BYTES)
        };
        if (a.seen_offsets.len() as u32) < need {
            return None;
        }
        let a = self.assembling.remove(&key).unwrap();
        self.completed
            .entry(pkt.src)
            .or_default()
            .insert(pkt.msg_id);
        self.stats.msgs_received.hit();
        Some(DeliveredMsg {
            src: pkt.src,
            msg_id: pkt.msg_id,
            export: a.export,
            offset: a.first_offset,
            len: a.len,
            tenant: pkt.tenant,
            completed_at: pkt.stamps.host_seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(src: u16, msg_id: u64, offset: u32, len: u32, msg_len: u32, buf: u32) -> Packet {
        let mut p = Packet::new(NodeId(src), NodeId(0), PacketKind::Data);
        p.msg_id = msg_id;
        p.msg_offset = offset;
        p.msg_len = msg_len;
        p.recv_buf = buf;
        p.payload_len = len;
        let mut flags = PacketFlags::default();
        if offset == 0 {
            flags.set(PacketFlags::FIRST_SEG);
        }
        if offset + len >= msg_len {
            flags.set(PacketFlags::LAST_SEG);
        }
        p.flags = flags;
        p
    }

    #[test]
    fn export_and_read_roundtrip() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(128, None);
        let mut p = seg(1, 0, 0, 5, 5, e.0);
        p.payload = Bytes::from_static(b"hello");
        let msg = lib.on_packet(&p).expect("single segment completes");
        assert_eq!(msg.len, 5);
        assert_eq!(lib.read_export(e, 0, 5), b"hello");
    }

    #[test]
    fn segmented_message_completes_on_last_segment() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(16384, None);
        let msg_len = 4096 * 2 + 1000;
        assert!(lib.on_packet(&seg(1, 7, 0, 4096, msg_len, e.0)).is_none());
        assert!(lib
            .on_packet(&seg(1, 7, 4096, 4096, msg_len, e.0))
            .is_none());
        let done = lib
            .on_packet(&seg(1, 7, 8192, 1000, msg_len, e.0))
            .expect("complete");
        assert_eq!(done.len, msg_len);
        assert_eq!(done.msg_id, 7);
        assert_eq!(lib.stats.msgs_received.get(), 1);
    }

    #[test]
    fn protection_rejects_bad_buffer_and_forbidden_host() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, Some(vec![NodeId(2)]));
        // Unknown buffer id.
        assert!(lib.on_packet(&seg(2, 0, 0, 8, 8, 99)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 1);
        // Host 1 is not allowed.
        assert!(lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 2);
        // Host 2 is allowed.
        assert!(lib.on_packet(&seg(2, 0, 0, 8, 8, e.0)).is_some());
        // Overrun rejected.
        assert!(lib.on_packet(&seg(2, 1, 60, 8, 8, e.0)).is_none());
        assert_eq!(lib.stats.protection_drops.get(), 3);
    }

    #[test]
    fn duplicate_completed_message_swallowed() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, None);
        assert!(lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_some());
        assert!(
            lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_none(),
            "dup swallowed"
        );
        assert_eq!(lib.stats.dup_msgs.get(), 1);
        // A later message still goes through.
        assert!(lib.on_packet(&seg(1, 1, 0, 8, 8, e.0)).is_some());
    }

    #[test]
    fn duplicate_segment_within_message_ignored() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(16384, None);
        let msg_len = 8192;
        assert!(lib.on_packet(&seg(1, 3, 0, 4096, msg_len, e.0)).is_none());
        assert!(
            lib.on_packet(&seg(1, 3, 0, 4096, msg_len, e.0)).is_none(),
            "same segment twice"
        );
        let done = lib.on_packet(&seg(1, 3, 4096, 4096, msg_len, e.0));
        assert!(
            done.is_some(),
            "completes exactly when all distinct segments arrived"
        );
    }

    #[test]
    fn interleaved_messages_from_two_sources_assemble_independently() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(32768, None);
        assert!(lib.on_packet(&seg(1, 0, 0, 4096, 8192, e.0)).is_none());
        assert!(lib.on_packet(&seg(2, 0, 0, 4096, 8192, e.0)).is_none());
        assert!(lib.on_packet(&seg(2, 0, 4096, 4096, 8192, e.0)).is_some());
        assert!(lib.on_packet(&seg(1, 0, 4096, 4096, 8192, e.0)).is_some());
        assert_eq!(lib.stats.msgs_received.get(), 2);
    }

    #[test]
    fn out_of_order_completion_not_swallowed() {
        // End-to-end recovery can complete an *older* id after a newer one
        // (msg 0 re-posted after msg 1 already landed). The old high-water
        // dedup would have swallowed msg 0 forever; the exact set must not.
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, None);
        assert!(lib.on_packet(&seg(1, 1, 0, 8, 8, e.0)).is_some());
        assert!(
            lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_some(),
            "older id completing late is a fresh message, not a duplicate"
        );
        // Both are now dedup'd.
        assert!(lib.on_packet(&seg(1, 0, 0, 8, 8, e.0)).is_none());
        assert!(lib.on_packet(&seg(1, 1, 0, 8, 8, e.0)).is_none());
        assert_eq!(lib.stats.dup_msgs.get(), 2);
    }

    #[test]
    fn completed_ids_prefix_merging() {
        let mut c = CompletedIds::default();
        c.insert(2);
        c.insert(1);
        assert!(!c.contains(0));
        assert!(c.contains(1) && c.contains(2));
        c.insert(0);
        assert_eq!(c.next, 3, "gap filled, prefix merges");
        assert!(c.above.is_empty());
    }

    #[test]
    fn failed_send_without_policy_or_retention_is_abandoned() {
        let mut lib = VmmcLib::new(NodeId(0));
        // No policy installed: silent-drop baseline.
        assert_eq!(lib.on_send_failed(Time::ZERO, 3), None);
        assert_eq!(lib.stats.abandoned.get(), 0, "baseline: not even counted");
        // Policy installed but the message was never retained (evicted or
        // pre-policy): abandoned explicitly.
        lib.enable_recovery(RecoveryConfig::default());
        assert_eq!(lib.on_send_failed(Time::ZERO, 3), None);
        assert_eq!(lib.stats.abandoned.get(), 1);
    }

    #[test]
    fn failed_send_backoff_doubles_until_budget() {
        let mut lib = VmmcLib::new(NodeId(0));
        lib.enable_recovery(RecoveryConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            retain: 8,
        });
        // Retain a message by hand (send_inner needs a live cluster ctx).
        lib.recovery.as_mut().unwrap().retained.insert(
            7,
            RetainedSend {
                to: VmmcLib::import(NodeId(1), ExportId(0), 64),
                offset: 0,
                len: 8,
                data: None,
                attempts: 0,
                due: None,
            },
        );
        let now = Time::from_millis(1);
        assert_eq!(lib.on_send_failed(now, 7), Some(Duration::from_micros(100)));
        assert_eq!(lib.on_send_failed(now, 7), Some(Duration::from_micros(200)));
        assert_eq!(lib.on_send_failed(now, 7), Some(Duration::from_micros(400)));
        assert_eq!(lib.retries_pending(), 1);
        assert_eq!(lib.on_send_failed(now, 7), None, "budget spent");
        assert_eq!(lib.stats.abandoned.get(), 1);
        assert_eq!(lib.retries_pending(), 0, "abandoned message dropped");
    }

    #[test]
    fn deposits_land_at_buffer_offsets() {
        let mut lib = VmmcLib::new(NodeId(0));
        let e = lib.export(64, None);
        let mut p = seg(1, 0, 10, 4, 4, e.0);
        // A message written at buffer offset 10 (sender offset parameter):
        // the wire carries msg_offset = 10 with FIRST_SEG.
        p.flags.set(PacketFlags::FIRST_SEG);
        p.flags.set(PacketFlags::LAST_SEG);
        p.payload = Bytes::from_static(b"ABCD");
        let done = lib.on_packet(&p).unwrap();
        assert_eq!(done.offset, 10);
        assert_eq!(lib.read_export(e, 10, 4), b"ABCD");
    }
}
