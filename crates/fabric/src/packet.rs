//! The wire packet descriptor.
//!
//! A real Myrinet frame is `route bytes … header … payload … CRC32`. In the
//! simulator a [`Packet`] is a descriptor carrying the fields of *every*
//! protocol layer we model — fabric routing, the reliability protocol's
//! sequence/generation/ACK numbers, and VMMC message bookkeeping. Collapsing
//! the layers into one struct is the standard DES shortcut: it is exactly the
//! information a real frame would carry, declared once instead of
//! serialized/deserialized at every layer boundary. The CRC is computed over
//! the *real* bytes when a payload is attached; bulk benchmark traffic that
//! carries no real bytes uses `payload_len` for timing and the `corrupted`
//! flag to model CRC failure.

use bytes::Bytes;
use san_sim::Time;

use crate::crc::crc32_frame;
use crate::ids::NodeId;
use crate::route::Route;

/// Stage timestamps collected as a packet flows through the system, used by
/// the latency-breakdown experiment (Figure 3). Zero means "not reached".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stamps {
    /// Host library began the send operation.
    pub host_post: Time,
    /// NIC saw the send descriptor.
    pub nic_tx_start: Time,
    /// Head entered the wire (network DMA start).
    pub injected: Time,
    /// Tail arrived at the destination NIC.
    pub delivered: Time,
    /// Receive-side host DMA finished depositing into host memory.
    pub deposited: Time,
    /// Receiving process observed the message.
    pub host_seen: Time,
}

/// Fixed header overhead on the wire, excluding route bytes (one per hop)
/// and the trailing CRC. Matches the order of magnitude of VMMC's headers.
pub const HEADER_BYTES: u32 = 16;
/// Trailing CRC-32.
pub const CRC_BYTES: u32 = 4;

/// What a packet is, one level above the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// VMMC data segment (possibly with a piggy-backed ACK).
    Data,
    /// Explicit acknowledgment (header-only).
    Ack,
    /// Mapping probe expecting the *host* at the end of the route to reply
    /// with its identity over the reverse route.
    ProbeHost,
    /// Mapping probe whose route loops through a switch back to the prober;
    /// its arrival back at the sender proves the probed port pair exists.
    ProbeLoop,
    /// Reply to a `ProbeHost` (carries the responder's identity).
    ProbeReply,
    /// Opaque test traffic used by unit tests and deadlock experiments.
    Raw,
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketFlags(pub u8);

impl PacketFlags {
    /// Sender requests an explicit ACK for this packet (sender-based
    /// feedback, §4.1.2).
    pub const ACK_REQUEST: PacketFlags = PacketFlags(1 << 0);
    /// The `ack_seq`/`ack_gen` fields are valid (piggy-backed ACK).
    pub const PIGGY_ACK: PacketFlags = PacketFlags(1 << 1);
    /// First segment of a multi-packet VMMC message.
    pub const FIRST_SEG: PacketFlags = PacketFlags(1 << 2);
    /// Last segment of a multi-packet VMMC message.
    pub const LAST_SEG: PacketFlags = PacketFlags(1 << 3);

    /// Set `other` in `self`.
    #[inline]
    pub fn set(&mut self, other: PacketFlags) {
        self.0 |= other.0;
    }
    /// Clear `other` in `self`.
    #[inline]
    pub fn clear(&mut self, other: PacketFlags) {
        self.0 &= !other.0;
    }
    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub fn has(self, other: PacketFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

/// A packet in flight. See the module docs for the layering rationale.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending host.
    pub src: NodeId,
    /// Intended destination host (probes may target the sender itself).
    pub dst: NodeId,
    /// Layer-above discriminator.
    pub kind: PacketKind,
    /// Reliability protocol: per-destination sequence number.
    pub seq: u32,
    /// Reliability protocol: route generation (bumped on re-mapping, §4.2).
    pub generation: u16,
    /// Piggy-backed cumulative ACK (valid when `PIGGY_ACK` is set): all
    /// packets of `ack_gen` up to and including `ack_seq` are acknowledged.
    pub ack_seq: u32,
    /// Generation the piggy-backed ACK refers to.
    pub ack_gen: u16,
    /// Flag bits.
    pub flags: PacketFlags,
    /// Source route: output port per switch hop.
    pub route: Route,
    /// Filled in by the fabric on delivery: the route back to the sender, as
    /// recorded from the input ports actually traversed.
    pub reverse_route: Route,
    /// Real payload bytes, when the traffic carries data; may be empty while
    /// `payload_len` is nonzero for bulk timing-only traffic.
    pub payload: Bytes,
    /// Logical payload length in bytes (drives serialization cost).
    pub payload_len: u32,
    /// CRC-32 over header+payload as computed at injection.
    pub crc: u32,
    /// Set when fault injection corrupted the packet on the wire; receivers
    /// treat this exactly as a CRC mismatch.
    pub corrupted: bool,
    /// VMMC: message identifier (also reused as probe token).
    pub msg_id: u64,
    /// VMMC: byte offset of this segment within the message.
    pub msg_offset: u32,
    /// VMMC: total message length.
    pub msg_len: u32,
    /// VMMC: receiver-side import/export buffer identifier.
    pub recv_buf: u32,
    /// Multi-tenant workload tag: which tenant stream this segment belongs
    /// to (0 = untagged/legacy traffic). Carried in otherwise-unused header
    /// padding, so it is excluded from the CRC image like `stamps`.
    pub tenant: u16,
    /// Stage timestamps (simulation instrumentation, not wire data).
    pub stamps: Stamps,
}

impl Packet {
    /// A blank packet of the given kind between `src` and `dst`; callers fill
    /// in protocol fields as needed.
    pub fn new(src: NodeId, dst: NodeId, kind: PacketKind) -> Self {
        Packet {
            src,
            dst,
            kind,
            seq: 0,
            generation: 0,
            ack_seq: 0,
            ack_gen: 0,
            flags: PacketFlags::default(),
            route: Route::empty(),
            reverse_route: Route::empty(),
            payload: Bytes::new(),
            payload_len: 0,
            crc: 0,
            corrupted: false,
            msg_id: 0,
            msg_offset: 0,
            msg_len: 0,
            recv_buf: 0,
            tenant: 0,
            stamps: Stamps::default(),
        }
    }

    /// Attach real payload bytes (sets `payload_len` to match).
    pub fn with_payload(mut self, data: Bytes) -> Self {
        self.payload_len = data.len() as u32;
        self.payload = data;
        self
    }

    /// Declare a logical payload size without carrying bytes.
    pub fn with_logical_len(mut self, len: u32) -> Self {
        self.payload = Bytes::new();
        self.payload_len = len;
        self
    }

    /// Total bytes this packet occupies on the wire.
    #[inline]
    pub fn wire_bytes(&self) -> u32 {
        HEADER_BYTES + self.route.len() as u32 + self.payload_len + CRC_BYTES
    }

    /// The header bytes the CRC covers, in a canonical order.
    fn header_image(&self) -> [u8; 24] {
        let mut h = [0u8; 24];
        h[0..2].copy_from_slice(&self.src.0.to_le_bytes());
        h[2..4].copy_from_slice(&self.dst.0.to_le_bytes());
        h[4] = self.kind as u8;
        h[5] = self.flags.0;
        h[6..10].copy_from_slice(&self.seq.to_le_bytes());
        h[10..12].copy_from_slice(&self.generation.to_le_bytes());
        h[12..16].copy_from_slice(&self.ack_seq.to_le_bytes());
        h[16..18].copy_from_slice(&self.ack_gen.to_le_bytes());
        h[18..22].copy_from_slice(&self.msg_offset.to_le_bytes());
        h[22] = (self.msg_id & 0xFF) as u8;
        h[23] = (self.payload_len & 0xFF) as u8;
        h
    }

    /// Compute and stamp the CRC (send-side network DMA behaviour).
    pub fn seal(&mut self) {
        self.crc = crc32_frame(&self.header_image(), &self.payload);
    }

    /// Receive-side CRC check. A packet fails if fault injection marked it
    /// corrupted, or if its real bytes no longer match the sealed CRC.
    pub fn crc_ok(&self) -> bool {
        !self.corrupted && self.crc == crc32_frame(&self.header_image(), &self.payload)
    }

    /// True for the two probe kinds.
    pub fn is_probe(&self) -> bool {
        matches!(self.kind, PacketKind::ProbeHost | PacketKind::ProbeLoop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_set_clear_has() {
        let mut f = PacketFlags::default();
        f.set(PacketFlags::ACK_REQUEST);
        f.set(PacketFlags::LAST_SEG);
        assert!(f.has(PacketFlags::ACK_REQUEST));
        assert!(f.has(PacketFlags::LAST_SEG));
        assert!(!f.has(PacketFlags::PIGGY_ACK));
        f.clear(PacketFlags::ACK_REQUEST);
        assert!(!f.has(PacketFlags::ACK_REQUEST));
        assert!(f.has(PacketFlags::LAST_SEG));
    }

    #[test]
    fn wire_bytes_accounts_for_all_parts() {
        let mut p = Packet::new(NodeId(0), NodeId(1), PacketKind::Data).with_logical_len(4096);
        p.route = Route::from_ports(&[1, 2, 3]);
        assert_eq!(p.wire_bytes(), HEADER_BYTES + 3 + 4096 + CRC_BYTES);
    }

    #[test]
    fn seal_then_check_roundtrip() {
        let mut p = Packet::new(NodeId(0), NodeId(1), PacketKind::Data)
            .with_payload(Bytes::from_static(b"hello world"));
        p.seq = 17;
        p.seal();
        assert!(p.crc_ok());
        // Header mutation after sealing must be detected.
        p.seq = 18;
        assert!(!p.crc_ok());
        p.seq = 17;
        assert!(p.crc_ok());
        // The wire-corruption flag also fails the check.
        p.corrupted = true;
        assert!(!p.crc_ok());
    }

    #[test]
    fn payload_mutation_detected() {
        let mut p = Packet::new(NodeId(2), NodeId(3), PacketKind::Data)
            .with_payload(Bytes::from(vec![5u8; 256]));
        p.seal();
        assert!(p.crc_ok());
        let mut bytes = p.payload.to_vec();
        bytes[100] ^= 0x40;
        p.payload = Bytes::from(bytes);
        assert!(!p.crc_ok());
    }
}
