//! Identifier newtypes for fabric entities.
//!
//! Small integer newtypes (`u16`/`u8`) keep hot structures compact (see the
//! type-size guidance in the perf book) while making it impossible to mix up
//! a host index with a switch index at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A host (equivalently: the NIC plugged into that host). Hosts have exactly
/// one network port in this model, as on the paper's Myrinet testbed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// A crossbar switch. Myrinet switches have no identity visible on the wire —
/// this ID exists only inside the simulator and for full-map baselines; the
/// on-demand mapper must discover switch identity by probing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u16);

/// A port number on a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u8);

/// An undirected link between two endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// One side of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A host's single network port.
    Host(NodeId),
    /// A specific port of a switch.
    Switch(SwitchId, PortId),
}

impl NodeId {
    /// Index form for vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// Index form for vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// Index form for vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index form for vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Endpoint {
    /// The host behind this endpoint, if it is one.
    pub fn host(self) -> Option<NodeId> {
        match self {
            Endpoint::Host(n) => Some(n),
            Endpoint::Switch(..) => None,
        }
    }

    /// The switch behind this endpoint, if it is one.
    pub fn switch(self) -> Option<(SwitchId, PortId)> {
        match self {
            Endpoint::Host(_) => None,
            Endpoint::Switch(s, p) => Some((s, p)),
        }
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}
impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}
impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}
impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Host(n) => write!(f, "{n:?}"),
            Endpoint::Switch(s, p) => write!(f, "{s:?}.{p:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_accessors() {
        let h = Endpoint::Host(NodeId(3));
        let s = Endpoint::Switch(SwitchId(1), PortId(4));
        assert_eq!(h.host(), Some(NodeId(3)));
        assert_eq!(h.switch(), None);
        assert_eq!(s.host(), None);
        assert_eq!(s.switch(), Some((SwitchId(1), PortId(4))));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", NodeId(2)), "h2");
        assert_eq!(
            format!("{:?}", Endpoint::Switch(SwitchId(0), PortId(7))),
            "s0.p7"
        );
    }
}
