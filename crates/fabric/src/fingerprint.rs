//! Wiring fingerprints and reconfiguration deltas.
//!
//! A fingerprint is an order-independent FNV-1a digest of the *entire*
//! wiring: host count, per-switch port counts, and every live link's id and
//! endpoints. Two topologies with the same fingerprint route identically,
//! which is what the `san-topo` route cache keys off. The digest lives here
//! (rather than in `san-topo`, where it was born) because live
//! reconfiguration makes the fabric engine itself a fingerprint producer:
//! every mutation emits a [`WiringDelta`] carrying the fingerprints on both
//! sides of the change.

use crate::ids::{LinkId, SwitchId};
use crate::topology::Topology;

/// FNV-1a over the full wiring of a topology. Removed (tombstoned) links do
/// not contribute; a link re-wired under its old id with its old endpoints
/// restores the old digest exactly, which is what lets a reverse mutation
/// reproduce the pre-mutation fingerprint.
pub fn fingerprint_topology(topo: &Topology) -> u64 {
    let mut h = Fnv::new();
    h.u64(topo.num_hosts() as u64);
    h.u64(topo.num_switches() as u64);
    for s in 0..topo.num_switches() {
        h.u64(topo.switch_ports(SwitchId(s as u16)) as u64);
    }
    for (id, link) in topo.links() {
        h.u64(id.idx() as u64);
        for ep in [link.a, link.b] {
            match ep.host() {
                Some(n) => {
                    h.u64(1);
                    h.u64(n.idx() as u64);
                }
                None => {
                    let (s, p) = ep.switch().expect("endpoint is host or switch");
                    h.u64(2);
                    h.u64(s.idx() as u64);
                    h.u64(p.idx() as u64);
                }
            }
        }
    }
    h.finish()
}

/// Minimal FNV-1a 64-bit accumulator (no external hashing deps).
pub struct Fnv(u64);

impl Fnv {
    /// Start with the FNV offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold in one u64, byte by byte.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// One live-reconfiguration step: what the wiring looked like before and
/// after, and exactly which links/switches changed. Route caches evict by
/// `changed_links`; incremental UP*/DOWN* re-orientation seeds its repair
/// from `changed_switches`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiringDelta {
    /// Reconfiguration epoch (1-based; epoch 0 is the initial wiring).
    pub epoch: u64,
    /// Fingerprint before the mutation.
    pub old_fp: u64,
    /// Fingerprint after the mutation.
    pub new_fp: u64,
    /// Links added or removed by this step.
    pub changed_links: Vec<LinkId>,
    /// Switches incident to any changed link (the patch region).
    pub changed_switches: Vec<SwitchId>,
}

impl WiringDelta {
    /// Does any route crossing `link` need re-planning after this delta?
    pub fn touches(&self, link: LinkId) -> bool {
        self.changed_links.contains(&link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Endpoint;

    #[test]
    fn fingerprint_is_wiring_sensitive() {
        let (a, _, _) = crate::topology::pair_via_switch();
        let (b, _, _) = crate::topology::pair_via_switch();
        assert_eq!(fingerprint_topology(&a), fingerprint_topology(&b));
        let mut c = a.clone();
        let h = c.add_host();
        let _ = h;
        assert_ne!(fingerprint_topology(&a), fingerprint_topology(&c));
    }

    #[test]
    fn reverse_mutation_restores_fingerprint() {
        let (mut t, a, _) = crate::topology::pair_via_switch();
        let before = fingerprint_topology(&t);
        let id = t.link_at(Endpoint::Host(a)).unwrap();
        let link = t.disconnect(id);
        assert_ne!(fingerprint_topology(&t), before, "removal changes the fp");
        let id2 = t.try_connect(link.a, link.b).unwrap();
        assert_eq!(id2, id, "freed id is reused LIFO");
        assert_eq!(
            fingerprint_topology(&t),
            before,
            "reverse mutation restores"
        );
    }

    #[test]
    fn delta_touch_query() {
        let d = WiringDelta {
            epoch: 1,
            old_fp: 1,
            new_fp: 2,
            changed_links: vec![LinkId(3)],
            changed_switches: vec![SwitchId(0)],
        };
        assert!(d.touches(LinkId(3)));
        assert!(!d.touches(LinkId(4)));
    }
}
