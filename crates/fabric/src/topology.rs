//! Static network topology: hosts, crossbar switches, and the links between
//! them.
//!
//! The topology is the *physical* wiring. Whether a link is currently alive
//! is dynamic state owned by the traversal engine ([`crate::engine`]), so a
//! reconfiguration experiment (Table 3: a node is re-connected elsewhere)
//! wires both locations here and toggles liveness at run time.
//!
//! Also provided: BFS shortest-route search (the oracle used for initial
//! route tables and as ground truth in mapper tests) and canonical builders
//! for every topology the paper uses.

use crate::ids::{Endpoint, LinkId, NodeId, PortId, SwitchId};
use crate::route::Route;
use std::collections::VecDeque;
use std::fmt;

/// An undirected link between two endpoints.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One side.
    pub a: Endpoint,
    /// The other side.
    pub b: Endpoint,
}

impl Link {
    /// The endpoint opposite to `ep`.
    ///
    /// # Panics
    /// Panics if `ep` is neither side of the link.
    pub fn other(&self, ep: Endpoint) -> Endpoint {
        if self.a == ep {
            self.b
        } else if self.b == ep {
            self.a
        } else {
            panic!("{ep:?} is not an endpoint of this link")
        }
    }
}

/// Why a wiring request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The endpoint already has a link plugged in.
    AlreadyWired(Endpoint),
    /// The endpoint names a host, switch, or port that does not exist.
    OutOfRange(Endpoint),
    /// Both ends of the requested link are the same endpoint.
    SelfLoop(Endpoint),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::AlreadyWired(ep) => write!(f, "endpoint {ep:?} already wired"),
            WireError::OutOfRange(ep) => write!(f, "endpoint {ep:?} out of range"),
            WireError::SelfLoop(ep) => write!(f, "endpoint {ep:?} cannot be wired to itself"),
        }
    }
}

impl std::error::Error for WireError {}

/// The wiring of a SAN.
///
/// Links are stored in id-indexed slots; [`Topology::disconnect`] leaves a
/// tombstone and frees the id onto a LIFO stack so a later live
/// [`Topology::try_connect`] reuses ids most-recently-freed first. Link ids
/// therefore stay stable across a reconfiguration — channel and metric
/// arrays indexed by `LinkId` never need compaction — and a reverse
/// mutation (re-wiring the same endpoints in reverse removal order)
/// restores the identical id assignment, and with it the identical wiring
/// fingerprint.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    hosts: Vec<Option<LinkId>>,
    switches: Vec<Vec<Option<LinkId>>>,
    links: Vec<Option<Link>>,
    free_links: Vec<LinkId>,
}

impl Topology {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host (one network port).
    pub fn add_host(&mut self) -> NodeId {
        self.hosts.push(None);
        NodeId((self.hosts.len() - 1) as u16)
    }

    /// Add `n` hosts, returning their IDs.
    pub fn add_hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Add a full-crossbar switch with `ports` ports.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        self.switches.push(vec![None; ports as usize]);
        SwitchId((self.switches.len() - 1) as u16)
    }

    /// Wire two endpoints together, refusing (rather than corrupting the
    /// port accounting) when an endpoint is out of range, already wired, or
    /// wired to itself. This is the live-reconfiguration entry point: a
    /// freed link id is reused (most recently freed first) so ids stay
    /// dense and stable.
    pub fn try_connect(&mut self, a: Endpoint, b: Endpoint) -> Result<LinkId, WireError> {
        if a == b {
            return Err(WireError::SelfLoop(a));
        }
        for ep in [a, b] {
            if !self.endpoint_in_range(ep) {
                return Err(WireError::OutOfRange(ep));
            }
            if self.link_at(ep).is_some() {
                return Err(WireError::AlreadyWired(ep));
            }
        }
        let id = self.free_links.pop().unwrap_or_else(|| {
            self.links.push(None);
            LinkId((self.links.len() - 1) as u32)
        });
        self.links[id.idx()] = Some(Link { a, b });
        *self.port_slot_mut(a) = Some(id);
        *self.port_slot_mut(b) = Some(id);
        Ok(id)
    }

    /// Wire two endpoints together.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or already wired; builders
    /// treat a bad wiring plan as a bug. Reconfiguration code that must
    /// handle refusal uses [`Topology::try_connect`].
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> LinkId {
        match self.try_connect(a, b) {
            Ok(id) => id,
            Err(e) => panic!("connect: {e}"),
        }
    }

    /// Unwire a link: both ports become free, the id goes back on the free
    /// stack (LIFO), and the link record is returned so the caller can
    /// re-wire or log it. Returns `None` when the link was already removed.
    pub fn try_disconnect(&mut self, id: LinkId) -> Option<Link> {
        let link = self.links.get_mut(id.idx())?.take()?;
        *self.port_slot_mut(link.a) = None;
        *self.port_slot_mut(link.b) = None;
        self.free_links.push(id);
        Some(link)
    }

    /// Unwire a link.
    ///
    /// # Panics
    /// Panics if the link does not exist (or was already removed).
    pub fn disconnect(&mut self, id: LinkId) -> Link {
        self.try_disconnect(id)
            .unwrap_or_else(|| panic!("disconnect: link {} does not exist", id.idx()))
    }

    /// De-rack a switch: unwire every link incident to it, in port order.
    /// The switch record itself remains (switch ids are stable), left with
    /// zero wired ports. Returns the removed links.
    pub fn remove_switch(&mut self, s: SwitchId) -> Vec<(LinkId, Link)> {
        let mut ids: Vec<LinkId> = Vec::new();
        for p in 0..self.switch_ports(s) {
            if let Some(id) = self.link_at(Endpoint::Switch(s, PortId(p))) {
                // A link joining two ports of the same switch appears twice.
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
        }
        ids.into_iter()
            .map(|id| (id, self.disconnect(id)))
            .collect()
    }

    fn endpoint_in_range(&self, ep: Endpoint) -> bool {
        match ep {
            Endpoint::Host(h) => h.idx() < self.hosts.len(),
            Endpoint::Switch(s, p) => self
                .switches
                .get(s.idx())
                .is_some_and(|ports| p.idx() < ports.len()),
        }
    }

    /// Convenience: wire host `h` to switch `s` port `p`.
    pub fn connect_host(&mut self, h: NodeId, s: SwitchId, p: u8) -> LinkId {
        self.connect(Endpoint::Host(h), Endpoint::Switch(s, PortId(p)))
    }

    /// Convenience: wire switch `sa` port `pa` to switch `sb` port `pb`.
    pub fn connect_switches(&mut self, sa: SwitchId, pa: u8, sb: SwitchId, pb: u8) -> LinkId {
        self.connect(
            Endpoint::Switch(sa, PortId(pa)),
            Endpoint::Switch(sb, PortId(pb)),
        )
    }

    fn port_slot_mut(&mut self, ep: Endpoint) -> &mut Option<LinkId> {
        match ep {
            Endpoint::Host(h) => &mut self.hosts[h.idx()],
            Endpoint::Switch(s, p) => &mut self.switches[s.idx()][p.idx()],
        }
    }

    /// The link wired at `ep`, if any.
    pub fn link_at(&self, ep: Endpoint) -> Option<LinkId> {
        match ep {
            Endpoint::Host(h) => self.hosts.get(h.idx()).copied().flatten(),
            Endpoint::Switch(s, p) => self
                .switches
                .get(s.idx())
                .and_then(|ports| ports.get(p.idx()))
                .copied()
                .flatten(),
        }
    }

    /// Link record.
    ///
    /// # Panics
    /// Panics if the link was removed by a reconfiguration.
    pub fn link(&self, id: LinkId) -> &Link {
        self.links[id.idx()]
            .as_ref()
            .unwrap_or_else(|| panic!("link {} was removed from the topology", id.idx()))
    }

    /// Link record, `None` when the id is out of range or the link was
    /// removed.
    pub fn try_link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.idx()).and_then(|l| l.as_ref())
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }
    /// Size of the link *id space* (wired links plus tombstones of removed
    /// ones). Per-link arrays indexed by `LinkId` must be this long; on a
    /// never-reconfigured fabric it equals the wired-link count.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }
    /// Number of links actually wired right now.
    pub fn num_wired_links(&self) -> usize {
        self.links.iter().filter(|l| l.is_some()).count()
    }
    /// Port count of a switch.
    pub fn switch_ports(&self, s: SwitchId) -> u8 {
        self.switches[s.idx()].len() as u8
    }
    /// Largest port count of any switch — the port budget an on-demand
    /// mapper has to probe per switch on this fabric.
    pub fn max_switch_ports(&self) -> u8 {
        self.switches.iter().map(|p| p.len()).max().unwrap_or(0) as u8
    }

    /// All currently wired links, with IDs (removed links are skipped).
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|l| (LinkId(i as u32), l)))
    }

    /// Lowest unwired port of switch `s`, if any — the generator hook large
    /// parametric topologies (`san-topo`) use so wiring code never has to
    /// track port cursors by hand.
    pub fn free_port(&self, s: SwitchId) -> Option<u8> {
        (0..self.switch_ports(s)).find(|&p| self.link_at(Endpoint::Switch(s, PortId(p))).is_none())
    }

    /// Number of wired ports on switch `s`.
    pub fn wired_ports(&self, s: SwitchId) -> u8 {
        (0..self.switch_ports(s))
            .filter(|&p| self.link_at(Endpoint::Switch(s, PortId(p))).is_some())
            .count() as u8
    }

    /// The switch port a host hangs off, if it is wired (and wired to a
    /// switch rather than another host).
    pub fn switch_of_host(&self, h: NodeId) -> Option<(SwitchId, PortId)> {
        let link = self.link_at(Endpoint::Host(h))?;
        self.link(link).other(Endpoint::Host(h)).switch()
    }

    /// The wired neighbors of switch `s`: `(own port, link, far endpoint)`
    /// for every connected port, in port order. Validator plumbing for the
    /// structural checks in `san-topo`.
    pub fn neighbors(&self, s: SwitchId) -> impl Iterator<Item = (PortId, LinkId, Endpoint)> + '_ {
        (0..self.switch_ports(s)).filter_map(move |p| {
            let ep = Endpoint::Switch(s, PortId(p));
            let link = self.link_at(ep)?;
            Some((PortId(p), link, self.link(link).other(ep)))
        })
    }

    /// Follow a full source route from `src`; returns the endpoint reached
    /// (`Endpoint::Host` on success) or `None` if the route exits an unwired
    /// or out-of-range port or has hops left over after reaching a host.
    /// `alive` filters dead links (pass `|_| true` for the physical wiring).
    pub fn trace_route(
        &self,
        src: NodeId,
        route: &Route,
        alive: impl Fn(LinkId) -> bool,
    ) -> Option<Endpoint> {
        let first = self.link_at(Endpoint::Host(src))?;
        if !alive(first) {
            return None;
        }
        let mut at = self.link(first).other(Endpoint::Host(src));
        for (i, &port) in route.ports().iter().enumerate() {
            let (s, _) = at.switch()?; // a route hop while at a host is invalid
            if port >= self.switch_ports(s) {
                return None;
            }
            let link = self.link_at(Endpoint::Switch(s, PortId(port)))?;
            if !alive(link) {
                return None;
            }
            at = self.link(link).other(Endpoint::Switch(s, PortId(port)));
            if at.host().is_some() && i + 1 < route.len() {
                return None; // route continues past a host
            }
        }
        Some(at)
    }

    /// BFS shortest route between two hosts over alive links. Ground-truth
    /// oracle for tests and initial route tables; the on-demand mapper must
    /// *not* use this (it probes instead).
    pub fn shortest_route(
        &self,
        from: NodeId,
        to: NodeId,
        alive: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        if from == to {
            return Some(Route::empty());
        }
        let first = self.link_at(Endpoint::Host(from))?;
        if !alive(first) {
            return None;
        }
        let start = self.link(first).other(Endpoint::Host(from));
        let (s0, _) = match start {
            Endpoint::Host(h) => return (h == to).then(Route::empty),
            Endpoint::Switch(s, p) => (s, p),
        };
        // BFS over switches, remembering the route taken.
        let mut seen = vec![false; self.num_switches()];
        let mut queue = VecDeque::new();
        seen[s0.idx()] = true;
        queue.push_back((s0, Route::empty()));
        while let Some((s, route)) = queue.pop_front() {
            if route.len() == crate::route::MAX_HOPS {
                continue;
            }
            for p in 0..self.switch_ports(s) {
                let Some(link) = self.link_at(Endpoint::Switch(s, PortId(p))) else {
                    continue;
                };
                if !alive(link) {
                    continue;
                }
                match self.link(link).other(Endpoint::Switch(s, PortId(p))) {
                    Endpoint::Host(h) if h == to => return Some(route.then(p)),
                    Endpoint::Host(_) => {}
                    Endpoint::Switch(s2, _) => {
                        if !seen[s2.idx()] {
                            seen[s2.idx()] = true;
                            queue.push_back((s2, route.then(p)));
                        }
                    }
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Canonical builders for the paper's experiments.
// ---------------------------------------------------------------------------

/// Two hosts joined by one 8-port switch: the microbenchmark setup (§5.1.4,
/// "a pair of nodes connected with a switch"). Hosts are on ports 0 and 1.
pub fn pair_via_switch() -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_host();
    let b = t.add_host();
    let s = t.add_switch(8);
    t.connect_host(a, s, 0);
    t.connect_host(b, s, 1);
    (t, a, b)
}

/// `n` hosts on a single 16-port switch.
pub fn star(n: usize) -> (Topology, Vec<NodeId>) {
    assert!(n <= 16);
    let mut t = Topology::new();
    let hosts = t.add_hosts(n);
    let s = t.add_switch(16);
    for (i, &h) in hosts.iter().enumerate() {
        t.connect_host(h, s, i as u8);
    }
    (t, hosts)
}

/// The application testbed: 4 nodes on one switch (sub-cluster of §5.1.4).
pub fn cluster4() -> (Topology, Vec<NodeId>) {
    star(4)
}

/// A chain of `k` 8-port switches with one host at each end, giving a
/// (k)-switch-hop host pair; used by the Table 3 hop sweep.
/// Host ports: port 0 of the first and last switch; inter-switch links use
/// ports 1 (toward the tail) and 2 (toward the head).
pub fn chain(k: usize) -> (Topology, NodeId, NodeId) {
    assert!(k >= 1);
    let mut t = Topology::new();
    let a = t.add_host();
    let b = t.add_host();
    let switches: Vec<_> = (0..k).map(|_| t.add_switch(8)).collect();
    t.connect_host(a, switches[0], 0);
    for w in switches.windows(2) {
        t.connect_switches(w[0], 1, w[1], 2);
    }
    t.connect_host(b, switches[k - 1], if k == 1 { 1 } else { 0 });
    (t, a, b)
}

/// Handle bundle for the Figure 2 mapping testbed.
#[derive(Debug, Clone)]
pub struct MappingTestbed {
    /// The wiring.
    pub topo: Topology,
    /// All hosts, indexed by the switch they hang off: `hosts[i]` hangs off
    /// `switches[i % 4]`.
    pub hosts: Vec<NodeId>,
    /// The four switches: two 16-port cores then two 8-port leaves.
    pub switches: Vec<SwitchId>,
    /// The redundant core-to-core link (killable to force re-routes).
    pub redundant_links: Vec<LinkId>,
}

/// The Figure 2 dynamic-mapping testbed: two 16-port and two 8-port
/// full-crossbar switches in a tree with redundant links so no single link is
/// a point of failure, plus `hosts_per_switch` hosts on each switch.
///
/// Wiring (ports in parentheses):
/// * core0 (16p) ⇄ core1 (16p) twice — ports 14/15 to 14/15,
/// * leaf2 (8p) to core0 (p12) and core1 (p12) — ports 6,7,
/// * leaf3 (8p) to core0 (p13) and core1 (p13) — ports 6,7,
/// * hosts on ports 0.. of their switch.
pub fn paper_mapping_testbed(hosts_per_switch: usize) -> MappingTestbed {
    assert!((1..=6).contains(&hosts_per_switch));
    let mut t = Topology::new();
    let core0 = t.add_switch(16);
    let core1 = t.add_switch(16);
    let leaf2 = t.add_switch(8);
    let leaf3 = t.add_switch(8);
    let redundant = vec![
        t.connect_switches(core0, 14, core1, 14),
        t.connect_switches(core0, 15, core1, 15),
        t.connect_switches(leaf2, 6, core0, 12),
        t.connect_switches(leaf2, 7, core1, 12),
        t.connect_switches(leaf3, 6, core0, 13),
        t.connect_switches(leaf3, 7, core1, 13),
    ];
    let switches = vec![core0, core1, leaf2, leaf3];
    let mut hosts = Vec::new();
    for i in 0..hosts_per_switch {
        for &s in &switches {
            let h = t.add_host();
            t.connect_host(h, s, i as u8);
            hosts.push(h);
        }
    }
    MappingTestbed {
        topo: t,
        hosts,
        switches,
        redundant_links: redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::MAX_HOPS;

    #[test]
    fn connect_and_query() {
        let (t, a, b) = pair_via_switch();
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_links(), 2);
        let la = t.link_at(Endpoint::Host(a)).unwrap();
        let other = t.link(la).other(Endpoint::Host(a));
        assert_eq!(other, Endpoint::Switch(SwitchId(0), PortId(0)));
        assert!(t
            .link_at(Endpoint::Switch(SwitchId(0), PortId(5)))
            .is_none());
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wire_panics() {
        let mut t = Topology::new();
        let h = t.add_host();
        let s = t.add_switch(4);
        t.connect_host(h, s, 0);
        let h2 = t.add_host();
        let _ = h2;
        t.connect(Endpoint::Host(h), Endpoint::Switch(s, PortId(1)));
    }

    #[test]
    fn try_connect_refuses_without_corrupting() {
        let mut t = Topology::new();
        let h = t.add_host();
        let s = t.add_switch(4);
        t.connect_host(h, s, 0);
        // Already-wired host port.
        assert_eq!(
            t.try_connect(Endpoint::Host(h), Endpoint::Switch(s, PortId(1))),
            Err(WireError::AlreadyWired(Endpoint::Host(h)))
        );
        // Out-of-range switch port / unknown switch.
        assert_eq!(
            t.try_connect(
                Endpoint::Switch(s, PortId(9)),
                Endpoint::Switch(s, PortId(1))
            ),
            Err(WireError::OutOfRange(Endpoint::Switch(s, PortId(9))))
        );
        assert_eq!(
            t.try_connect(
                Endpoint::Switch(SwitchId(7), PortId(0)),
                Endpoint::Switch(s, PortId(1))
            ),
            Err(WireError::OutOfRange(Endpoint::Switch(
                SwitchId(7),
                PortId(0)
            )))
        );
        // Self-loop.
        assert_eq!(
            t.try_connect(
                Endpoint::Switch(s, PortId(1)),
                Endpoint::Switch(s, PortId(1))
            ),
            Err(WireError::SelfLoop(Endpoint::Switch(s, PortId(1))))
        );
        // The refusals left the accounting authoritative: ports 1..3 free.
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.wired_ports(s), 1);
        assert_eq!(t.free_port(s), Some(1));
    }

    #[test]
    fn disconnect_frees_ports_and_reuses_ids_lifo() {
        let (mut t, a, b) = pair_via_switch();
        let la = t.link_at(Endpoint::Host(a)).unwrap();
        let lb = t.link_at(Endpoint::Host(b)).unwrap();
        assert_eq!(t.num_wired_links(), 2);
        let rec_a = t.disconnect(la);
        let rec_b = t.disconnect(lb);
        assert_eq!(t.num_wired_links(), 0);
        assert_eq!(t.num_links(), 2, "id space keeps the tombstones");
        assert!(t.try_link(la).is_none());
        assert_eq!(t.free_port(SwitchId(0)), Some(0), "ports are free again");
        // LIFO reuse: re-wiring in reverse removal order restores ids.
        assert_eq!(t.try_connect(rec_b.a, rec_b.b), Ok(lb));
        assert_eq!(t.try_connect(rec_a.a, rec_a.b), Ok(la));
        assert_eq!(t.link_at(Endpoint::Host(a)), Some(la));
        assert_eq!(t.num_wired_links(), 2);
    }

    #[test]
    fn remove_switch_unwires_everything() {
        let tb = paper_mapping_testbed(1);
        let mut t = tb.topo.clone();
        let core0 = tb.switches[0];
        let incident = t.remove_switch(core0);
        // core0: 2 core links + 1 per leaf (2) + 1 host = 5 links.
        assert_eq!(incident.len(), 5);
        assert_eq!(t.wired_ports(core0), 0);
        for (id, _) in &incident {
            assert!(t.try_link(*id).is_none());
        }
        // The rest of the fabric still routes around the removed core.
        let (h2, h3) = (tb.hosts[2], tb.hosts[3]); // on the two leaves
        assert!(t.shortest_route(h2, h3, |_| true).is_some());
        // Removing again is a no-op with nothing left to unwire.
        assert!(t.remove_switch(core0).is_empty());
    }

    #[test]
    fn trace_route_follows_wiring() {
        let (t, a, b) = pair_via_switch();
        // a → switch port 1 → b
        let r = Route::from_ports(&[1]);
        assert_eq!(t.trace_route(a, &r, |_| true), Some(Endpoint::Host(b)));
        // Port 5 is unwired.
        assert_eq!(t.trace_route(a, &Route::from_ports(&[5]), |_| true), None);
        // Out-of-range port.
        assert_eq!(t.trace_route(a, &Route::from_ports(&[200]), |_| true), None);
        // Route continuing past a host is invalid.
        assert_eq!(
            t.trace_route(a, &Route::from_ports(&[1, 0]), |_| true),
            None
        );
        // Dead link filter.
        let la = t.link_at(Endpoint::Host(a)).unwrap();
        assert_eq!(t.trace_route(a, &r, |l| l != la), None);
    }

    #[test]
    fn shortest_route_in_chain() {
        for k in 1..=4 {
            let (t, a, b) = chain(k);
            let r = t.shortest_route(a, b, |_| true).expect("route exists");
            assert_eq!(r.len(), k, "chain of {k} switches needs {k} hops");
            assert_eq!(t.trace_route(a, &r, |_| true), Some(Endpoint::Host(b)));
            // And back.
            let rb = t.shortest_route(b, a, |_| true).unwrap();
            assert_eq!(t.trace_route(b, &rb, |_| true), Some(Endpoint::Host(a)));
        }
    }

    #[test]
    fn shortest_route_respects_dead_links() {
        let tb = paper_mapping_testbed(1);
        let (a, b) = (tb.hosts[0], tb.hosts[1]); // on core0 and core1
        let direct = tb.topo.shortest_route(a, b, |_| true).unwrap();
        assert_eq!(direct.len(), 2, "one core-to-core hop");
        // Kill both direct core links: route must detour via a leaf.
        let dead = [tb.redundant_links[0], tb.redundant_links[1]];
        let detour = tb
            .topo
            .shortest_route(a, b, |l| !dead.contains(&l))
            .unwrap();
        assert_eq!(detour.len(), 3, "detour via a leaf switch");
        assert_eq!(
            tb.topo.trace_route(a, &detour, |l| !dead.contains(&l)),
            Some(Endpoint::Host(b))
        );
    }

    #[test]
    fn no_route_when_partitioned() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let s1 = t.add_switch(4);
        let s2 = t.add_switch(4);
        t.connect_host(a, s1, 0);
        t.connect_host(b, s2, 0);
        assert!(t.shortest_route(a, b, |_| true).is_none());
    }

    #[test]
    fn mapping_testbed_shape() {
        let tb = paper_mapping_testbed(2);
        assert_eq!(tb.topo.num_switches(), 4);
        assert_eq!(tb.hosts.len(), 8);
        assert_eq!(tb.topo.switch_ports(tb.switches[0]), 16);
        assert_eq!(tb.topo.switch_ports(tb.switches[2]), 8);
        // Every host pair is connected.
        for &x in &tb.hosts {
            for &y in &tb.hosts {
                if x != y {
                    assert!(tb.topo.shortest_route(x, y, |_| true).is_some());
                }
            }
        }
    }

    #[test]
    fn route_longer_than_max_hops_is_not_found() {
        // Chain longer than MAX_HOPS: BFS must terminate and return None.
        let (t, a, b) = chain(MAX_HOPS + 2);
        assert!(t.shortest_route(a, b, |_| true).is_none());
    }
}
