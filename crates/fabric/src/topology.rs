//! Static network topology: hosts, crossbar switches, and the links between
//! them.
//!
//! The topology is the *physical* wiring. Whether a link is currently alive
//! is dynamic state owned by the traversal engine ([`crate::engine`]), so a
//! reconfiguration experiment (Table 3: a node is re-connected elsewhere)
//! wires both locations here and toggles liveness at run time.
//!
//! Also provided: BFS shortest-route search (the oracle used for initial
//! route tables and as ground truth in mapper tests) and canonical builders
//! for every topology the paper uses.

use crate::ids::{Endpoint, LinkId, NodeId, PortId, SwitchId};
use crate::route::Route;
use std::collections::VecDeque;

/// An undirected link between two endpoints.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One side.
    pub a: Endpoint,
    /// The other side.
    pub b: Endpoint,
}

impl Link {
    /// The endpoint opposite to `ep`.
    ///
    /// # Panics
    /// Panics if `ep` is neither side of the link.
    pub fn other(&self, ep: Endpoint) -> Endpoint {
        if self.a == ep {
            self.b
        } else if self.b == ep {
            self.a
        } else {
            panic!("{ep:?} is not an endpoint of this link")
        }
    }
}

/// The wiring of a SAN.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    hosts: Vec<Option<LinkId>>,
    switches: Vec<Vec<Option<LinkId>>>,
    links: Vec<Link>,
}

impl Topology {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host (one network port).
    pub fn add_host(&mut self) -> NodeId {
        self.hosts.push(None);
        NodeId((self.hosts.len() - 1) as u16)
    }

    /// Add `n` hosts, returning their IDs.
    pub fn add_hosts(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_host()).collect()
    }

    /// Add a full-crossbar switch with `ports` ports.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        self.switches.push(vec![None; ports as usize]);
        SwitchId((self.switches.len() - 1) as u16)
    }

    /// Wire two endpoints together.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or already wired.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        for ep in [a, b] {
            let slot = self.port_slot_mut(ep);
            assert!(slot.is_none(), "endpoint {ep:?} already wired");
            *slot = Some(id);
        }
        self.links.push(Link { a, b });
        id
    }

    /// Convenience: wire host `h` to switch `s` port `p`.
    pub fn connect_host(&mut self, h: NodeId, s: SwitchId, p: u8) -> LinkId {
        self.connect(Endpoint::Host(h), Endpoint::Switch(s, PortId(p)))
    }

    /// Convenience: wire switch `sa` port `pa` to switch `sb` port `pb`.
    pub fn connect_switches(&mut self, sa: SwitchId, pa: u8, sb: SwitchId, pb: u8) -> LinkId {
        self.connect(
            Endpoint::Switch(sa, PortId(pa)),
            Endpoint::Switch(sb, PortId(pb)),
        )
    }

    fn port_slot_mut(&mut self, ep: Endpoint) -> &mut Option<LinkId> {
        match ep {
            Endpoint::Host(h) => &mut self.hosts[h.idx()],
            Endpoint::Switch(s, p) => &mut self.switches[s.idx()][p.idx()],
        }
    }

    /// The link wired at `ep`, if any.
    pub fn link_at(&self, ep: Endpoint) -> Option<LinkId> {
        match ep {
            Endpoint::Host(h) => self.hosts.get(h.idx()).copied().flatten(),
            Endpoint::Switch(s, p) => self
                .switches
                .get(s.idx())
                .and_then(|ports| ports.get(p.idx()))
                .copied()
                .flatten(),
        }
    }

    /// Link record.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }
    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }
    /// Port count of a switch.
    pub fn switch_ports(&self, s: SwitchId) -> u8 {
        self.switches[s.idx()].len() as u8
    }
    /// Largest port count of any switch — the port budget an on-demand
    /// mapper has to probe per switch on this fabric.
    pub fn max_switch_ports(&self) -> u8 {
        self.switches.iter().map(|p| p.len()).max().unwrap_or(0) as u8
    }

    /// All links, with IDs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// Lowest unwired port of switch `s`, if any — the generator hook large
    /// parametric topologies (`san-topo`) use so wiring code never has to
    /// track port cursors by hand.
    pub fn free_port(&self, s: SwitchId) -> Option<u8> {
        (0..self.switch_ports(s)).find(|&p| self.link_at(Endpoint::Switch(s, PortId(p))).is_none())
    }

    /// Number of wired ports on switch `s`.
    pub fn wired_ports(&self, s: SwitchId) -> u8 {
        (0..self.switch_ports(s))
            .filter(|&p| self.link_at(Endpoint::Switch(s, PortId(p))).is_some())
            .count() as u8
    }

    /// The switch port a host hangs off, if it is wired (and wired to a
    /// switch rather than another host).
    pub fn switch_of_host(&self, h: NodeId) -> Option<(SwitchId, PortId)> {
        let link = self.link_at(Endpoint::Host(h))?;
        self.link(link).other(Endpoint::Host(h)).switch()
    }

    /// The wired neighbors of switch `s`: `(own port, link, far endpoint)`
    /// for every connected port, in port order. Validator plumbing for the
    /// structural checks in `san-topo`.
    pub fn neighbors(&self, s: SwitchId) -> impl Iterator<Item = (PortId, LinkId, Endpoint)> + '_ {
        (0..self.switch_ports(s)).filter_map(move |p| {
            let ep = Endpoint::Switch(s, PortId(p));
            let link = self.link_at(ep)?;
            Some((PortId(p), link, self.link(link).other(ep)))
        })
    }

    /// Follow a full source route from `src`; returns the endpoint reached
    /// (`Endpoint::Host` on success) or `None` if the route exits an unwired
    /// or out-of-range port or has hops left over after reaching a host.
    /// `alive` filters dead links (pass `|_| true` for the physical wiring).
    pub fn trace_route(
        &self,
        src: NodeId,
        route: &Route,
        alive: impl Fn(LinkId) -> bool,
    ) -> Option<Endpoint> {
        let first = self.link_at(Endpoint::Host(src))?;
        if !alive(first) {
            return None;
        }
        let mut at = self.link(first).other(Endpoint::Host(src));
        for (i, &port) in route.ports().iter().enumerate() {
            let (s, _) = at.switch()?; // a route hop while at a host is invalid
            if port >= self.switch_ports(s) {
                return None;
            }
            let link = self.link_at(Endpoint::Switch(s, PortId(port)))?;
            if !alive(link) {
                return None;
            }
            at = self.link(link).other(Endpoint::Switch(s, PortId(port)));
            if at.host().is_some() && i + 1 < route.len() {
                return None; // route continues past a host
            }
        }
        Some(at)
    }

    /// BFS shortest route between two hosts over alive links. Ground-truth
    /// oracle for tests and initial route tables; the on-demand mapper must
    /// *not* use this (it probes instead).
    pub fn shortest_route(
        &self,
        from: NodeId,
        to: NodeId,
        alive: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        if from == to {
            return Some(Route::empty());
        }
        let first = self.link_at(Endpoint::Host(from))?;
        if !alive(first) {
            return None;
        }
        let start = self.link(first).other(Endpoint::Host(from));
        let (s0, _) = match start {
            Endpoint::Host(h) => return (h == to).then(Route::empty),
            Endpoint::Switch(s, p) => (s, p),
        };
        // BFS over switches, remembering the route taken.
        let mut seen = vec![false; self.num_switches()];
        let mut queue = VecDeque::new();
        seen[s0.idx()] = true;
        queue.push_back((s0, Route::empty()));
        while let Some((s, route)) = queue.pop_front() {
            if route.len() == crate::route::MAX_HOPS {
                continue;
            }
            for p in 0..self.switch_ports(s) {
                let Some(link) = self.link_at(Endpoint::Switch(s, PortId(p))) else {
                    continue;
                };
                if !alive(link) {
                    continue;
                }
                match self.link(link).other(Endpoint::Switch(s, PortId(p))) {
                    Endpoint::Host(h) if h == to => return Some(route.then(p)),
                    Endpoint::Host(_) => {}
                    Endpoint::Switch(s2, _) => {
                        if !seen[s2.idx()] {
                            seen[s2.idx()] = true;
                            queue.push_back((s2, route.then(p)));
                        }
                    }
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Canonical builders for the paper's experiments.
// ---------------------------------------------------------------------------

/// Two hosts joined by one 8-port switch: the microbenchmark setup (§5.1.4,
/// "a pair of nodes connected with a switch"). Hosts are on ports 0 and 1.
pub fn pair_via_switch() -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_host();
    let b = t.add_host();
    let s = t.add_switch(8);
    t.connect_host(a, s, 0);
    t.connect_host(b, s, 1);
    (t, a, b)
}

/// `n` hosts on a single 16-port switch.
pub fn star(n: usize) -> (Topology, Vec<NodeId>) {
    assert!(n <= 16);
    let mut t = Topology::new();
    let hosts = t.add_hosts(n);
    let s = t.add_switch(16);
    for (i, &h) in hosts.iter().enumerate() {
        t.connect_host(h, s, i as u8);
    }
    (t, hosts)
}

/// The application testbed: 4 nodes on one switch (sub-cluster of §5.1.4).
pub fn cluster4() -> (Topology, Vec<NodeId>) {
    star(4)
}

/// A chain of `k` 8-port switches with one host at each end, giving a
/// (k)-switch-hop host pair; used by the Table 3 hop sweep.
/// Host ports: port 0 of the first and last switch; inter-switch links use
/// ports 1 (toward the tail) and 2 (toward the head).
pub fn chain(k: usize) -> (Topology, NodeId, NodeId) {
    assert!(k >= 1);
    let mut t = Topology::new();
    let a = t.add_host();
    let b = t.add_host();
    let switches: Vec<_> = (0..k).map(|_| t.add_switch(8)).collect();
    t.connect_host(a, switches[0], 0);
    for w in switches.windows(2) {
        t.connect_switches(w[0], 1, w[1], 2);
    }
    t.connect_host(b, switches[k - 1], if k == 1 { 1 } else { 0 });
    (t, a, b)
}

/// Handle bundle for the Figure 2 mapping testbed.
#[derive(Debug, Clone)]
pub struct MappingTestbed {
    /// The wiring.
    pub topo: Topology,
    /// All hosts, indexed by the switch they hang off: `hosts[i]` hangs off
    /// `switches[i % 4]`.
    pub hosts: Vec<NodeId>,
    /// The four switches: two 16-port cores then two 8-port leaves.
    pub switches: Vec<SwitchId>,
    /// The redundant core-to-core link (killable to force re-routes).
    pub redundant_links: Vec<LinkId>,
}

/// The Figure 2 dynamic-mapping testbed: two 16-port and two 8-port
/// full-crossbar switches in a tree with redundant links so no single link is
/// a point of failure, plus `hosts_per_switch` hosts on each switch.
///
/// Wiring (ports in parentheses):
/// * core0 (16p) ⇄ core1 (16p) twice — ports 14/15 to 14/15,
/// * leaf2 (8p) to core0 (p12) and core1 (p12) — ports 6,7,
/// * leaf3 (8p) to core0 (p13) and core1 (p13) — ports 6,7,
/// * hosts on ports 0.. of their switch.
pub fn paper_mapping_testbed(hosts_per_switch: usize) -> MappingTestbed {
    assert!((1..=6).contains(&hosts_per_switch));
    let mut t = Topology::new();
    let core0 = t.add_switch(16);
    let core1 = t.add_switch(16);
    let leaf2 = t.add_switch(8);
    let leaf3 = t.add_switch(8);
    let redundant = vec![
        t.connect_switches(core0, 14, core1, 14),
        t.connect_switches(core0, 15, core1, 15),
        t.connect_switches(leaf2, 6, core0, 12),
        t.connect_switches(leaf2, 7, core1, 12),
        t.connect_switches(leaf3, 6, core0, 13),
        t.connect_switches(leaf3, 7, core1, 13),
    ];
    let switches = vec![core0, core1, leaf2, leaf3];
    let mut hosts = Vec::new();
    for i in 0..hosts_per_switch {
        for &s in &switches {
            let h = t.add_host();
            t.connect_host(h, s, i as u8);
            hosts.push(h);
        }
    }
    MappingTestbed {
        topo: t,
        hosts,
        switches,
        redundant_links: redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::MAX_HOPS;

    #[test]
    fn connect_and_query() {
        let (t, a, b) = pair_via_switch();
        assert_eq!(t.num_hosts(), 2);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_links(), 2);
        let la = t.link_at(Endpoint::Host(a)).unwrap();
        let other = t.link(la).other(Endpoint::Host(a));
        assert_eq!(other, Endpoint::Switch(SwitchId(0), PortId(0)));
        assert!(t
            .link_at(Endpoint::Switch(SwitchId(0), PortId(5)))
            .is_none());
        let _ = b;
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wire_panics() {
        let mut t = Topology::new();
        let h = t.add_host();
        let s = t.add_switch(4);
        t.connect_host(h, s, 0);
        let h2 = t.add_host();
        let _ = h2;
        t.connect(Endpoint::Host(h), Endpoint::Switch(s, PortId(1)));
    }

    #[test]
    fn trace_route_follows_wiring() {
        let (t, a, b) = pair_via_switch();
        // a → switch port 1 → b
        let r = Route::from_ports(&[1]);
        assert_eq!(t.trace_route(a, &r, |_| true), Some(Endpoint::Host(b)));
        // Port 5 is unwired.
        assert_eq!(t.trace_route(a, &Route::from_ports(&[5]), |_| true), None);
        // Out-of-range port.
        assert_eq!(t.trace_route(a, &Route::from_ports(&[200]), |_| true), None);
        // Route continuing past a host is invalid.
        assert_eq!(
            t.trace_route(a, &Route::from_ports(&[1, 0]), |_| true),
            None
        );
        // Dead link filter.
        let la = t.link_at(Endpoint::Host(a)).unwrap();
        assert_eq!(t.trace_route(a, &r, |l| l != la), None);
    }

    #[test]
    fn shortest_route_in_chain() {
        for k in 1..=4 {
            let (t, a, b) = chain(k);
            let r = t.shortest_route(a, b, |_| true).expect("route exists");
            assert_eq!(r.len(), k, "chain of {k} switches needs {k} hops");
            assert_eq!(t.trace_route(a, &r, |_| true), Some(Endpoint::Host(b)));
            // And back.
            let rb = t.shortest_route(b, a, |_| true).unwrap();
            assert_eq!(t.trace_route(b, &rb, |_| true), Some(Endpoint::Host(a)));
        }
    }

    #[test]
    fn shortest_route_respects_dead_links() {
        let tb = paper_mapping_testbed(1);
        let (a, b) = (tb.hosts[0], tb.hosts[1]); // on core0 and core1
        let direct = tb.topo.shortest_route(a, b, |_| true).unwrap();
        assert_eq!(direct.len(), 2, "one core-to-core hop");
        // Kill both direct core links: route must detour via a leaf.
        let dead = [tb.redundant_links[0], tb.redundant_links[1]];
        let detour = tb
            .topo
            .shortest_route(a, b, |l| !dead.contains(&l))
            .unwrap();
        assert_eq!(detour.len(), 3, "detour via a leaf switch");
        assert_eq!(
            tb.topo.trace_route(a, &detour, |l| !dead.contains(&l)),
            Some(Endpoint::Host(b))
        );
    }

    #[test]
    fn no_route_when_partitioned() {
        let mut t = Topology::new();
        let a = t.add_host();
        let b = t.add_host();
        let s1 = t.add_switch(4);
        let s2 = t.add_switch(4);
        t.connect_host(a, s1, 0);
        t.connect_host(b, s2, 0);
        assert!(t.shortest_route(a, b, |_| true).is_none());
    }

    #[test]
    fn mapping_testbed_shape() {
        let tb = paper_mapping_testbed(2);
        assert_eq!(tb.topo.num_switches(), 4);
        assert_eq!(tb.hosts.len(), 8);
        assert_eq!(tb.topo.switch_ports(tb.switches[0]), 16);
        assert_eq!(tb.topo.switch_ports(tb.switches[2]), 8);
        // Every host pair is connected.
        for &x in &tb.hosts {
            for &y in &tb.hosts {
                if x != y {
                    assert!(tb.topo.shortest_route(x, y, |_| true).is_some());
                }
            }
        }
    }

    #[test]
    fn route_longer_than_max_hops_is_not_found() {
        // Chain longer than MAX_HOPS: BFS must terminate and return None.
        let (t, a, b) = chain(MAX_HOPS + 2);
        assert!(t.shortest_route(a, b, |_| true).is_none());
    }
}
