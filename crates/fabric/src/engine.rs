//! The cut-through traversal engine.
//!
//! A packet in flight (a [`Flight`]) acquires the *directed channels* along
//! its source route one hop at a time. A channel belongs to at most one
//! flight; a flight that finds its next channel busy waits in that channel's
//! FIFO **while still holding everything it already acquired** — that is
//! wormhole backpressure, and with cyclic route sets it produces genuine
//! deadlock, which the paper's design intentionally permits and recovers from
//! via the Myrinet path-reset timer plus retransmission (§4.2).
//!
//! Timing: the head moves one hop per `hop_latency`; serialization of the
//! packet body is paid once, starting when the first channel is acquired;
//! delivery (tail arrival) happens at
//! `max(last_hop_head_arrival, first_acquire + serialization)`; all held
//! channels release at delivery. A flight not delivered within
//! `path_reset_timeout` of injection is killed and reported to the sender as
//! a path reset — the hardware deadlock-recovery behaviour (§3.3).
//!
//! Fault hooks: wire loss and corruption probabilities (transient), and link
//! / switch death (permanent), under which held flights are killed silently —
//! exactly the failure the retransmission protocol must mask.

use std::collections::VecDeque;

use san_des::arena::{Chain, ChainArena, Slab};
use san_sim::{Duration, Sim, SimRng, Time};
use san_telemetry::{Layer, Telemetry, TraceEvent, TraceKind};

use crate::fault::TransientFaults;
use crate::fingerprint::{fingerprint_topology, WiringDelta};
use crate::ids::{Endpoint, LinkId, NodeId, PortId, SwitchId};
use crate::packet::Packet;
use crate::route::Route;
use crate::topology::{Link, Topology, WireError};

/// Physical constants of the fabric.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Link bandwidth in bytes/second. Myrinet: 1.28 Gb/s = 160 MB/s.
    pub link_bandwidth: u64,
    /// Per-hop head latency (propagation + crossbar fall-through).
    pub hop_latency: Duration,
    /// Send-path reset (deadlock detection) timeout. Myrinet allows 62.5 ms
    /// to 4 s; the paper's testbed uses the hardware default.
    pub path_reset_timeout: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            link_bandwidth: 160_000_000,
            hop_latency: Duration::from_nanos(300),
            path_reset_timeout: Duration::from_millis(62), // ≈ Myrinet minimum 62.5ms
        }
    }
}

/// Events the engine schedules for itself. The cluster driver routes them
/// back via [`Engine::handle`].
#[derive(Debug, Clone, Copy)]
pub enum FabricEvent {
    /// The head of `flight` reached the far end of its last-acquired channel.
    HeadAdvance { flight: u32, epoch: u32 },
    /// The tail of `flight` reached the destination: delivery completes.
    TailDone { flight: u32, epoch: u32 },
    /// Path-reset timer check for `flight`.
    ResetCheck { flight: u32, epoch: u32 },
    /// Permanent fault: a link dies.
    LinkDown { link: LinkId },
    /// Repair / reconfiguration: a link comes (back) up.
    LinkUp { link: LinkId },
    /// Permanent fault: a whole switch dies.
    SwitchDown { switch: SwitchId },
    /// Live reconfiguration: wire a new link between two free ports.
    GrowLink { a: Endpoint, b: Endpoint },
    /// Live reconfiguration: announce a planned removal — the link keeps
    /// carrying in-flight traffic but planners stop offering it.
    DrainLink { link: LinkId },
    /// Live reconfiguration: detach a link from the fabric (in-flight
    /// traffic on it is lost and recovered by retransmission).
    RemoveLink { link: LinkId },
    /// Live reconfiguration: de-rack a whole switch (all its links detach).
    RemoveSwitch { switch: SwitchId },
    /// Notification that a reconfiguration epoch completed. The fingerprint
    /// delta summary rides in the event; the full changed-link/-switch
    /// lists are in [`Engine::reconfig_log`], addressable by `epoch`.
    Reconfigured {
        epoch: u64,
        old_fp: u64,
        new_fp: u64,
    },
}

/// Which shard owns each link of a partitioned fabric. Installed via
/// [`Engine::set_shard_map`] on every shard's engine; `None` (the default)
/// means unsharded and leaves behaviour byte-identical to the serial engine.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// This engine's shard id.
    pub mine: u16,
    /// Owning shard per link index. Links grown after partitioning default
    /// to `mine`.
    pub link_owner: Vec<u16>,
}

/// A flight handed off at a shard boundary, to be re-injected mid-route in
/// the owning shard via [`Engine::inject_crossing`].
///
/// Crossing semantics are store-and-forward: the flight releases everything
/// it holds in the source shard, its body is fully buffered at the boundary
/// (`ready_at = max(now, serialization done) + hop_latency`), and it then
/// contends for the cut channel inside the owning shard, restarting
/// serialization and its deadlock timer there. `hop_latency` is exactly the
/// synchronization lookahead, which is what makes conservative windows safe.
#[derive(Debug)]
pub struct PortalCrossing {
    /// The packet, as it stood at the boundary.
    pub pkt: Packet,
    /// Original injecting host.
    pub src: NodeId,
    /// The directed cut channel to acquire in the owning shard.
    pub ch: u32,
    /// Route position (next hop byte index) at handoff.
    pub hop_idx: usize,
    /// Input ports recorded so far (for the reverse route).
    pub reverse_in_ports: Vec<u8>,
    /// Transient-fault verdict drawn at injection, carried across.
    pub will_drop_on_wire: bool,
    /// Shard that owns the cut link.
    pub dst_shard: u16,
    /// Earliest instant the flight may contend in the owning shard.
    pub ready_at: Time,
}

/// Why a packet vanished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Tried to cross a dead link.
    DeadLink,
    /// Entered a dead switch.
    DeadSwitch,
    /// Route exits an unwired/out-of-range port, or continues past a host.
    InvalidRoute,
    /// Route bytes ran out while still inside the network.
    Absorbed,
    /// Transient wire loss (fault injection).
    WireLoss,
    /// Killed because a link/switch it occupied died.
    KilledByFault,
}

/// What the engine tells the outside world.
#[derive(Debug)]
pub enum FabricOut {
    /// `pkt` arrived in full at `node` (its `reverse_route` is filled in).
    Delivered {
        /// Destination host.
        node: NodeId,
        /// The packet, with `reverse_route` populated.
        pkt: Packet,
    },
    /// `pkt` disappeared inside the network; nobody is notified on real
    /// hardware — the output exists for statistics and tests.
    Dropped {
        /// The lost packet.
        pkt: Packet,
        /// Why.
        reason: DropReason,
    },
    /// The sender's path-reset timer fired: the packet was dropped and the
    /// sending NIC is told its send path was reset (it will retransmit).
    PathReset {
        /// The sender whose path was reset.
        src: NodeId,
        /// The packet that was stuck.
        pkt: Packet,
    },
    /// The flight reached a link owned by another shard; the driver must
    /// route it to `dst_shard` at `ready_at` (sharded runs only).
    ShardCross(Box<PortalCrossing>),
}

/// Point-in-time fabric statistics (a snapshot of the registered
/// `fabric.*` telemetry counters; see [`Engine::stats`]).
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Drops by cause: dead link, dead switch, invalid route, absorbed,
    /// wire loss, killed-by-fault (same order as [`DropReason`]).
    pub dropped: [u64; 6],
    /// Path resets (deadlock recoveries).
    pub path_resets: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

impl EngineStats {
    /// Total drops of all causes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }
}

impl DropReason {
    /// Metric-path leaf for this cause (`fabric.dropped.<name>`).
    pub const fn name(self) -> &'static str {
        match self {
            DropReason::DeadLink => "dead_link",
            DropReason::DeadSwitch => "dead_switch",
            DropReason::InvalidRoute => "invalid_route",
            DropReason::Absorbed => "absorbed",
            DropReason::WireLoss => "wire_loss",
            DropReason::KilledByFault => "killed_by_fault",
        }
    }
}

/// The engine's registered metric cells (`fabric.*` family).
#[derive(Debug)]
struct FabricMetrics {
    injected: san_telemetry::Counter,
    delivered: san_telemetry::Counter,
    dropped: [san_telemetry::Counter; 6],
    path_resets: san_telemetry::Counter,
    bytes_delivered: san_telemetry::Counter,
    /// Flights handed off at shard boundaries (0 in unsharded runs).
    shard_crossings: san_telemetry::Counter,
    /// Cumulative occupied time per link (`fabric.link.<n>.busy_ns`),
    /// summed over both directed channels.
    link_busy: Vec<san_telemetry::Counter>,
}

impl FabricMetrics {
    fn register(tel: &Telemetry, num_links: usize) -> Self {
        const REASONS: [DropReason; 6] = [
            DropReason::DeadLink,
            DropReason::DeadSwitch,
            DropReason::InvalidRoute,
            DropReason::Absorbed,
            DropReason::WireLoss,
            DropReason::KilledByFault,
        ];
        Self {
            injected: tel.counter("fabric.injected"),
            delivered: tel.counter("fabric.delivered"),
            dropped: REASONS.map(|r| tel.counter(&format!("fabric.dropped.{}", r.name()))),
            path_resets: tel.counter("fabric.path_resets"),
            bytes_delivered: tel.counter("fabric.bytes_delivered"),
            shard_crossings: tel.counter("fabric.shard_crossings"),
            link_busy: (0..num_links)
                .map(|l| tel.counter(&format!("fabric.link.{l}.busy_ns")))
                .collect(),
        }
    }

    fn count_drop(&self, r: DropReason) {
        self.dropped[r as usize].hit();
    }
}

/// The live-reconfiguration metric cells (`reconfig.*` family).
#[derive(Debug)]
struct ReconfigMetrics {
    /// Reconfiguration epochs completed.
    epochs: san_telemetry::Counter,
    /// Links grown live.
    links_added: san_telemetry::Counter,
    /// Links detached live.
    links_removed: san_telemetry::Counter,
    /// Packets in flight lost to a detach (the cost a drain avoids).
    inflight_lost: san_telemetry::Counter,
    /// Drain durations: announce-to-detach time per drained link.
    drain_ns: san_telemetry::HistogramHandle,
}

impl ReconfigMetrics {
    fn register(tel: &Telemetry) -> Self {
        Self {
            epochs: tel.counter("reconfig.epochs"),
            links_added: tel.counter("reconfig.links_added"),
            links_removed: tel.counter("reconfig.links_removed"),
            inflight_lost: tel.counter("reconfig.inflight_lost"),
            drain_ns: tel.histogram("reconfig.drain_ns"),
        }
    }
}

#[derive(Debug)]
struct Channel {
    owner: Option<u32>,
    waiters: VecDeque<u32>,
    alive: bool,
    /// When the current owner acquired the channel (for busy accounting).
    acquired_at: Time,
}

#[derive(Debug)]
struct Flight {
    pkt: Packet,
    src: NodeId,
    /// Acquired channels, insertion-ordered, in the engine's [`ChainArena`].
    held: Chain,
    hop_idx: usize,
    reverse_in_ports: Vec<u8>,
    ser_done: Time,
    waiting_on: Option<u32>,
    will_drop_on_wire: bool,
}

/// The traversal engine. Owns the topology, channel occupancy, and all
/// flights.
#[derive(Debug)]
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    channels: Vec<Channel>,
    switch_alive: Vec<bool>,
    /// In-flight packets: stable indices + generation tags, LIFO slot reuse
    /// (identical to the hand-rolled slab this replaced, so event-epoch
    /// matching and slot-assignment order are unchanged).
    flights: Slab<Flight>,
    /// Node pool for every flight's held-channel chain.
    chains: ChainArena,
    /// Link-ownership map for sharded runs; `None` (default) is the serial
    /// engine, byte-identical to the pre-sharding build.
    shard_map: Option<ShardMap>,
    /// Trace events buffered within a dispatch, flushed to the ring in one
    /// head claim at every public-method exit (so records from other layers
    /// interleave exactly as they did with per-event recording).
    tbatch: Vec<TraceEvent>,
    /// Cached `tel.tracing_enabled()` (fixed at telemetry construction).
    trace_on: bool,
    faults: TransientFaults,
    fault_rng: SimRng,
    /// Gilbert–Elliott channel state (true = bad) when `faults.burst` is set.
    burst_bad: bool,
    /// Per-link draining flag (planned removal announced): the link still
    /// carries traffic but planners must stop offering it.
    draining: Vec<bool>,
    /// When each draining link's drain was announced.
    drain_started: Vec<Time>,
    /// Every completed reconfiguration step, in epoch order (epoch `e` is
    /// at index `e - 1`).
    reconfig_log: Vec<WiringDelta>,
    metrics: FabricMetrics,
    rmetrics: ReconfigMetrics,
    tel: Telemetry,
}

impl Engine {
    /// Build an engine over `topo` with all links alive, registering its
    /// metrics into a private (unexported) telemetry handle. Simulations
    /// that want the `fabric.*` family visible pass their own handle via
    /// [`Engine::with_telemetry`] (the cluster layer does this).
    pub fn new(topo: Topology, cfg: EngineConfig) -> Self {
        Self::with_telemetry(topo, cfg, Telemetry::new())
    }

    /// Build an engine registering `fabric.*` metrics into `tel` and
    /// recording trace events through it.
    pub fn with_telemetry(topo: Topology, cfg: EngineConfig, tel: Telemetry) -> Self {
        let channels = (0..topo.num_links() * 2)
            .map(|_| Channel {
                owner: None,
                waiters: VecDeque::new(),
                alive: true,
                acquired_at: Time::ZERO,
            })
            .collect();
        let switch_alive = vec![true; topo.num_switches()];
        let metrics = FabricMetrics::register(&tel, topo.num_links());
        let rmetrics = ReconfigMetrics::register(&tel);
        let num_links = topo.num_links();
        Self {
            topo,
            cfg,
            channels,
            switch_alive,
            flights: Slab::new(),
            chains: ChainArena::new(),
            shard_map: None,
            tbatch: Vec::new(),
            trace_on: tel.tracing_enabled(),
            faults: TransientFaults::none(),
            fault_rng: SimRng::seed_from(0x00FA_B017),
            burst_bad: false,
            draining: vec![false; num_links],
            drain_started: vec![Time::ZERO; num_links],
            reconfig_log: Vec::new(),
            metrics,
            rmetrics,
            tel,
        }
    }

    /// The telemetry handle this engine records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Build a packet-scoped trace event at `now`; `node` is the observer.
    fn pkt_event(now: Time, kind: TraceKind, node: NodeId, pkt: &Packet, aux: u64) -> TraceEvent {
        TraceEvent {
            at_ns: now.nanos(),
            layer: Layer::Fabric,
            kind,
            node: node.0,
            src: pkt.src.0,
            dst: pkt.dst.0,
            generation: pkt.generation,
            seq: pkt.seq,
            aux,
        }
    }

    /// Buffer one trace event. Events batch up within a dispatch and flush
    /// at public-method exits ([`Engine::flush_trace`]); order is preserved,
    /// so the ring contents stay byte-identical to per-event recording.
    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        if self.trace_on {
            self.tbatch.push(ev);
            if self.tbatch.len() >= 32 {
                self.flush_trace();
            }
        }
    }

    /// Flush buffered trace events to the ring in a single head claim.
    #[inline]
    fn flush_trace(&mut self) {
        if !self.tbatch.is_empty() {
            self.tel.record_batch(&self.tbatch);
            self.tbatch.clear();
        }
    }

    /// Count + trace + report a drop (every loss funnels through here).
    fn report_drop(
        &mut self,
        now: Time,
        pkt: Packet,
        reason: DropReason,
        out: &mut Vec<FabricOut>,
    ) {
        self.metrics.count_drop(reason);
        self.trace(Self::pkt_event(
            now,
            TraceKind::PacketDropped,
            pkt.src,
            &pkt,
            reason as u64,
        ));
        out.push(FabricOut::Dropped { pkt, reason });
    }

    /// The wiring.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Physical constants.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Statistics so far: a by-value snapshot of the registered `fabric.*`
    /// counters (the legacy accessor API, kept as a thin view).
    pub fn stats(&self) -> EngineStats {
        let m = &self.metrics;
        let mut dropped = [0u64; 6];
        for (slot, c) in dropped.iter_mut().zip(&m.dropped) {
            *slot = c.get();
        }
        EngineStats {
            injected: m.injected.get(),
            delivered: m.delivered.get(),
            dropped,
            path_resets: m.path_resets.get(),
            bytes_delivered: m.bytes_delivered.get(),
        }
    }

    /// Install transient wire-fault model (loss/corruption probabilities)
    /// with a dedicated RNG seed.
    pub fn set_transient_faults(&mut self, f: TransientFaults, seed: u64) {
        self.faults = f;
        self.fault_rng = SimRng::seed_from(seed);
    }

    /// Serialization time of `bytes` on a link.
    #[inline]
    pub fn serialization(&self, bytes: u32) -> Duration {
        Duration::for_bytes(bytes as u64, self.cfg.link_bandwidth)
    }

    /// Is the given link currently alive?
    pub fn link_alive(&self, l: LinkId) -> bool {
        self.channels[l.idx() * 2].alive
    }

    /// Is the given switch currently alive?
    pub fn switch_alive(&self, s: SwitchId) -> bool {
        self.switch_alive[s.idx()]
    }

    /// Alive-filter closure for route oracles.
    pub fn alive_filter(&self) -> impl Fn(LinkId) -> bool + '_ {
        |l| {
            self.link_alive(l) && {
                let link = self.topo.link(l);
                let sw_ok = |ep: Endpoint| ep.switch().is_none_or(|(s, _)| self.switch_alive(s));
                sw_ok(link.a) && sw_ok(link.b)
            }
        }
    }

    /// Number of flights currently inside the network.
    pub fn in_flight(&self) -> usize {
        self.flights.len()
    }

    // -- channel helpers ----------------------------------------------------

    /// Directed channel id for traversing `link` away from endpoint `from`.
    fn channel_from(&self, link: LinkId, from: Endpoint) -> u32 {
        let l = self.topo.link(link);
        let dir = if l.a == from { 0 } else { 1 };
        (link.idx() * 2 + dir) as u32
    }

    fn channel_link(&self, ch: u32) -> LinkId {
        LinkId(ch / 2)
    }

    /// Far end of directed channel `ch`.
    fn channel_dst(&self, ch: u32) -> Endpoint {
        let link = self.topo.link(self.channel_link(ch));
        if ch.is_multiple_of(2) {
            link.b
        } else {
            link.a
        }
    }

    // -- injection ----------------------------------------------------------

    /// Inject `pkt` from its `src` host at the current time. The engine
    /// draws transient wire faults, seals nothing (callers seal), and starts
    /// the head moving. Events come back through [`Engine::handle`].
    pub fn inject<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        mut pkt: Packet,
        out: &mut Vec<FabricOut>,
    ) {
        self.metrics.injected.hit();
        pkt.stamps.injected = sim.now();
        self.trace(Self::pkt_event(
            sim.now(),
            TraceKind::PacketInjected,
            pkt.src,
            &pkt,
            pkt.wire_bytes() as u64,
        ));
        // Transient wire faults: independent per packet, or gated by the
        // Gilbert–Elliott channel state when a burst model is configured.
        let faults_active = match self.faults.burst {
            None => true,
            Some(b) => {
                self.burst_bad = b.step(self.burst_bad, &mut self.fault_rng);
                self.burst_bad
            }
        };
        let mut will_drop = false;
        if faults_active {
            if self.faults.loss_prob > 0.0 && self.fault_rng.chance(self.faults.loss_prob) {
                will_drop = true;
            }
            if self.faults.corrupt_prob > 0.0 && self.fault_rng.chance(self.faults.corrupt_prob) {
                pkt.corrupted = true;
                self.trace(Self::pkt_event(
                    sim.now(),
                    TraceKind::PacketCorrupted,
                    pkt.src,
                    &pkt,
                    0,
                ));
            }
        }

        let src = pkt.src;
        let Some(first_link) = self.topo.link_at(Endpoint::Host(src)) else {
            self.report_drop(sim.now(), pkt, DropReason::InvalidRoute, out);
            self.flush_trace();
            return;
        };
        let f = Flight {
            pkt,
            src,
            held: Chain::EMPTY,
            hop_idx: 0,
            reverse_in_ports: Vec::with_capacity(4),
            ser_done: Time::MAX, // set on first acquire
            waiting_on: None,
            will_drop_on_wire: will_drop,
        };
        let (slot, epoch) = self.flights.insert(f);
        // Arm the path-reset (deadlock) timer.
        sim.schedule_in(
            self.cfg.path_reset_timeout,
            FabricEvent::ResetCheck {
                flight: slot,
                epoch,
            }
            .into(),
        );
        let ch = self.channel_from(first_link, Endpoint::Host(src));
        self.try_acquire(sim, slot, ch, out);
        self.flush_trace();
    }

    /// Re-inject a flight handed off from another shard (see
    /// [`PortalCrossing`]). Runs in the shard owning `x.ch`, at `x.ready_at`;
    /// the body was fully buffered at the boundary, so serialization (and
    /// the deadlock timer — a sharded-only timing-model difference) restart
    /// here.
    pub fn inject_crossing<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        x: PortalCrossing,
        out: &mut Vec<FabricOut>,
    ) {
        let f = Flight {
            pkt: x.pkt,
            src: x.src,
            held: Chain::EMPTY,
            hop_idx: x.hop_idx,
            reverse_in_ports: x.reverse_in_ports,
            ser_done: Time::MAX, // restarts on the cut-channel acquire
            waiting_on: None,
            will_drop_on_wire: x.will_drop_on_wire,
        };
        let (slot, epoch) = self.flights.insert(f);
        sim.schedule_in(
            self.cfg.path_reset_timeout,
            FabricEvent::ResetCheck {
                flight: slot,
                epoch,
            }
            .into(),
        );
        self.try_acquire(sim, slot, x.ch, out);
        self.flush_trace();
    }

    // -- event handling -----------------------------------------------------

    /// Process one fabric event.
    pub fn handle<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        ev: FabricEvent,
        out: &mut Vec<FabricOut>,
    ) {
        match ev {
            FabricEvent::HeadAdvance { flight, epoch } => {
                if self.live(flight, epoch) {
                    self.head_advance(sim, flight, out);
                }
            }
            FabricEvent::TailDone { flight, epoch } => {
                if self.live(flight, epoch) {
                    self.finish_delivery(sim, flight, out);
                }
            }
            FabricEvent::ResetCheck { flight, epoch } => {
                if self.live(flight, epoch) {
                    self.metrics.path_resets.hit();
                    let f = self.kill_flight(sim, flight, out);
                    self.trace(Self::pkt_event(
                        sim.now(),
                        TraceKind::PathReset,
                        f.src,
                        &f.pkt,
                        0,
                    ));
                    out.push(FabricOut::PathReset {
                        src: f.src,
                        pkt: f.pkt,
                    });
                }
            }
            FabricEvent::LinkDown { link } => self.set_link_alive(sim, link, false, out),
            FabricEvent::LinkUp { link } => self.set_link_alive(sim, link, true, out),
            FabricEvent::SwitchDown { switch } => self.kill_switch(sim, switch, out),
            FabricEvent::GrowLink { a, b } => {
                // A refused grow (port raced into use) is not an engine
                // error: the campaign scheduled it against stale wiring.
                let _ = self.grow_link(sim, a, b, out);
            }
            FabricEvent::DrainLink { link } => self.drain_link(sim, link),
            FabricEvent::RemoveLink { link } => {
                let _ = self.shrink_link(sim, link, out);
            }
            FabricEvent::RemoveSwitch { switch } => {
                let _ = self.shrink_switch(sim, switch, out);
            }
            // Pure notification: the mutation that produced it already ran.
            FabricEvent::Reconfigured { .. } => {}
        }
        self.flush_trace();
    }

    fn live(&self, flight: u32, epoch: u32) -> bool {
        self.flights.contains(flight, epoch)
    }

    /// If `ch`'s link belongs to another shard, that shard's id.
    #[inline]
    fn foreign_shard(&self, ch: u32) -> Option<u16> {
        let m = self.shard_map.as_ref()?;
        let owner = m
            .link_owner
            .get((ch / 2) as usize)
            .copied()
            .unwrap_or(m.mine);
        (owner != m.mine).then_some(owner)
    }

    /// Hand `flight` off at a shard boundary: release everything it holds
    /// here (store-and-forward — the body is fully buffered at the cut) and
    /// emit a [`PortalCrossing`] the driver routes to the owning shard.
    fn shard_handoff<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        flight: u32,
        ch: u32,
        dst_shard: u16,
        out: &mut Vec<FabricOut>,
    ) {
        let f = self.kill_flight(sim, flight, out);
        let now = sim.now();
        let ser_done = if f.ser_done == Time::MAX {
            now
        } else {
            f.ser_done
        };
        // Boundary buffering completes at max(head arrival, tail arrival);
        // the cut-link hop itself costs `hop_latency`, which equals the
        // conservative-window lookahead — the crossing can never be due
        // inside the window that produced it.
        let ready_at = now.max(ser_done) + self.cfg.hop_latency;
        self.metrics.shard_crossings.hit();
        out.push(FabricOut::ShardCross(Box::new(PortalCrossing {
            pkt: f.pkt,
            src: f.src,
            ch,
            hop_idx: f.hop_idx,
            reverse_in_ports: f.reverse_in_ports,
            will_drop_on_wire: f.will_drop_on_wire,
            dst_shard,
            ready_at,
        })));
    }

    /// Try to take channel `ch` for `flight`; on success the head starts
    /// crossing it, otherwise the flight queues on the channel.
    fn try_acquire<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        flight: u32,
        ch: u32,
        out: &mut Vec<FabricOut>,
    ) {
        // Sharded runs: a channel owned elsewhere is crossed by handing the
        // flight to its owner, which also decides the link's liveness.
        if let Some(dst) = self.foreign_shard(ch) {
            self.shard_handoff(sim, flight, ch, dst, out);
            return;
        }
        if !self.channels[ch as usize].alive {
            let f = self.kill_flight(sim, flight, out);
            self.report_drop(sim.now(), f.pkt, DropReason::DeadLink, out);
            return;
        }
        let c = &mut self.channels[ch as usize];
        if c.owner.is_none() {
            c.owner = Some(flight);
            self.grant(sim, flight, ch);
        } else {
            c.waiters.push_back(flight);
            self.flights.get_mut(flight).unwrap().waiting_on = Some(ch);
        }
    }

    /// `flight` now owns `ch`: start the head across it.
    fn grant<E: From<FabricEvent>>(&mut self, sim: &mut Sim<E>, flight: u32, ch: u32) {
        let epoch = self.flights.generation(flight);
        let hop = self.cfg.hop_latency;
        let bw = self.cfg.link_bandwidth;
        let now = sim.now();
        self.channels[ch as usize].acquired_at = now;
        let Self {
            flights, chains, ..
        } = self;
        let f = flights.get_mut(flight).unwrap();
        f.waiting_on = None;
        chains.push(&mut f.held, ch);
        if f.held.len() == 1 {
            // First channel: the body starts streaming now.
            f.ser_done = now + Duration::for_bytes(f.pkt.wire_bytes() as u64, bw);
        }
        sim.schedule_in(hop, FabricEvent::HeadAdvance { flight, epoch }.into());
    }

    /// The head arrived at the far end of its last-acquired channel.
    fn head_advance<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        flight: u32,
        out: &mut Vec<FabricOut>,
    ) {
        let last_ch = {
            let f = self.flights.get(flight).unwrap();
            self.chains.last(&f.held).unwrap()
        };
        let at = self.channel_dst(last_ch);
        match at {
            Endpoint::Host(_h) => {
                let (hop_idx, route_len, ser_done) = {
                    let f = self.flights.get(flight).unwrap();
                    (f.hop_idx, f.pkt.route.len(), f.ser_done)
                };
                if hop_idx < route_len {
                    // Route bytes left over after reaching a host: invalid.
                    let f = self.kill_flight(sim, flight, out);
                    self.report_drop(sim.now(), f.pkt, DropReason::InvalidRoute, out);
                    return;
                }
                // Tail arrives when serialization completes (cut-through).
                let epoch = self.flights.generation(flight);
                let t = sim.now().max(ser_done);
                sim.schedule(t, FabricEvent::TailDone { flight, epoch }.into());
            }
            Endpoint::Switch(s, in_port) => {
                if !self.switch_alive[s.idx()] {
                    let f = self.kill_flight(sim, flight, out);
                    self.report_drop(sim.now(), f.pkt, DropReason::DeadSwitch, out);
                    return;
                }
                let (hop_idx, route_len) = {
                    let f = self.flights.get_mut(flight).unwrap();
                    f.reverse_in_ports.push(in_port.0);
                    (f.hop_idx, f.pkt.route.len())
                };
                if hop_idx >= route_len {
                    // Route exhausted inside the network: absorbed.
                    let f = self.kill_flight(sim, flight, out);
                    self.report_drop(sim.now(), f.pkt, DropReason::Absorbed, out);
                    return;
                }
                let port = self.flights.get(flight).unwrap().pkt.route.hop(hop_idx);
                self.flights.get_mut(flight).unwrap().hop_idx += 1;
                if port >= self.topo.switch_ports(s) {
                    let f = self.kill_flight(sim, flight, out);
                    self.report_drop(sim.now(), f.pkt, DropReason::InvalidRoute, out);
                    return;
                }
                let Some(link) = self.topo.link_at(Endpoint::Switch(s, PortId(port))) else {
                    let f = self.kill_flight(sim, flight, out);
                    self.report_drop(sim.now(), f.pkt, DropReason::InvalidRoute, out);
                    return;
                };
                // Hop trace: observer is the switch (aux = exit port).
                let ev = {
                    let f = self.flights.get(flight).unwrap();
                    Self::pkt_event(
                        sim.now(),
                        TraceKind::PacketHop,
                        NodeId(s.idx() as u16),
                        &f.pkt,
                        port as u64,
                    )
                };
                self.trace(ev);
                let ch = self.channel_from(link, Endpoint::Switch(s, PortId(port)));
                self.try_acquire(sim, flight, ch, out);
            }
        }
    }

    /// Tail reached the destination: release everything and deliver.
    fn finish_delivery<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        flight: u32,
        out: &mut Vec<FabricOut>,
    ) {
        let last_ch = {
            let f = self.flights.get(flight).unwrap();
            self.chains.last(&f.held).unwrap()
        };
        let dest = self.channel_dst(last_ch);
        let mut f = self.take_flight(flight);
        self.release_held(sim, &mut f, out);
        let node = dest.host().expect("finish_delivery at a non-host");
        // Build the usable return route: reversed input ports.
        let mut rev = Route::empty();
        for &p in f.reverse_in_ports.iter().rev() {
            rev = rev.then(p);
        }
        f.pkt.reverse_route = rev;
        f.pkt.stamps.delivered = sim.now();
        if f.will_drop_on_wire {
            self.report_drop(sim.now(), f.pkt, DropReason::WireLoss, out);
        } else {
            self.metrics.delivered.hit();
            self.metrics.bytes_delivered.add(f.pkt.payload_len as u64);
            self.trace(Self::pkt_event(
                sim.now(),
                TraceKind::PacketDelivered,
                node,
                &f.pkt,
                f.pkt.payload_len as u64,
            ));
            out.push(FabricOut::Delivered { node, pkt: f.pkt });
        }
    }

    /// Remove a flight, releasing channels and wait-queue membership.
    /// Returns the flight so callers can report its packet.
    fn kill_flight<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        flight: u32,
        out: &mut Vec<FabricOut>,
    ) -> Flight {
        let mut f = self.take_flight(flight);
        if let Some(ch) = f.waiting_on.take() {
            self.channels[ch as usize].waiters.retain(|&w| w != flight);
        }
        self.release_held(sim, &mut f, out);
        f
    }

    fn take_flight(&mut self, flight: u32) -> Flight {
        self.flights.remove(flight).expect("flight gone")
    }

    /// Free all channels a flight holds, granting each to its next waiter.
    fn release_held<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        f: &mut Flight,
        _out: &mut Vec<FabricOut>,
    ) {
        let held = self.chains.take(&mut f.held);
        let now = sim.now();
        for ch in held {
            let busy = now.since(self.channels[ch as usize].acquired_at);
            self.metrics.link_busy[(ch / 2) as usize].add(busy.nanos());
            self.channels[ch as usize].owner = None;
            // Grant to the next live waiter.
            while let Some(w) = self.channels[ch as usize].waiters.pop_front() {
                if self.flights.get(w).is_some() {
                    self.channels[ch as usize].owner = Some(w);
                    self.grant(sim, w, ch);
                    break;
                }
            }
        }
    }

    // -- permanent faults ---------------------------------------------------

    /// Change a link's liveness. Bringing a link down kills every flight
    /// holding either of its channels (their data is lost on the wire).
    pub fn set_link_alive<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        link: LinkId,
        alive: bool,
        out: &mut Vec<FabricOut>,
    ) {
        for dir in 0..2 {
            self.channels[link.idx() * 2 + dir].alive = alive;
        }
        if !alive {
            self.kill_flights_on(sim, |held_ch| LinkId(held_ch / 2) == link, out);
        }
        self.flush_trace();
    }

    /// Kill a switch: all its links' channels die with it.
    pub fn kill_switch<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        s: SwitchId,
        out: &mut Vec<FabricOut>,
    ) {
        self.switch_alive[s.idx()] = false;
        let dead_links: Vec<LinkId> = self
            .topo
            .links()
            .filter(|(_, l)| {
                [l.a, l.b]
                    .iter()
                    .any(|ep| ep.switch().is_some_and(|(sw, _)| sw == s))
            })
            .map(|(id, _)| id)
            .collect();
        for l in &dead_links {
            for dir in 0..2 {
                self.channels[l.idx() * 2 + dir].alive = false;
            }
        }
        self.kill_flights_on(sim, |ch| dead_links.contains(&LinkId(ch / 2)), out);
        self.flush_trace();
    }

    fn kill_flights_on<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        pred: impl Fn(u32) -> bool,
        out: &mut Vec<FabricOut>,
    ) {
        let victims: Vec<u32> = self
            .flights
            .iter()
            .filter_map(|(i, fl)| {
                let hit = self.chains.iter(&fl.held).any(&pred) || fl.waiting_on.is_some_and(&pred);
                hit.then_some(i)
            })
            .collect();
        for v in victims {
            if self.flights.get(v).is_some() {
                let f = self.kill_flight(sim, v, out);
                self.report_drop(sim.now(), f.pkt, DropReason::KilledByFault, out);
            }
        }
    }

    // -- live reconfiguration -----------------------------------------------

    /// The reconfiguration epoch: how many wiring mutations have completed.
    /// Drivers poll this between slices and re-plan when it advances.
    pub fn reconfig_epoch(&self) -> u64 {
        self.reconfig_log.len() as u64
    }

    /// Every completed reconfiguration step, in epoch order.
    pub fn reconfig_log(&self) -> &[WiringDelta] {
        &self.reconfig_log
    }

    /// Is this link marked draining (planned removal announced)?
    pub fn link_draining(&self, l: LinkId) -> bool {
        self.draining.get(l.idx()).copied().unwrap_or(false)
    }

    /// Candidate filter for route planners: alive **and not draining**.
    /// In-flight traffic still crosses a draining link ([`Engine::alive_filter`]
    /// stays true for it); only *new* route offers avoid it.
    pub fn planner_filter(&self) -> impl Fn(LinkId) -> bool + '_ {
        let alive = self.alive_filter();
        move |l| alive(l) && !self.link_draining(l)
    }

    /// Flights currently holding or waiting on a channel matching `pred`.
    fn count_flights_on(&self, pred: impl Fn(u32) -> bool) -> u64 {
        self.flights
            .iter()
            .filter(|(_, fl)| {
                self.chains.iter(&fl.held).any(&pred) || fl.waiting_on.is_some_and(&pred)
            })
            .count() as u64
    }

    /// Seal one wiring mutation: compute the fingerprint delta, log it,
    /// record the trace event, and emit a [`FabricEvent::Reconfigured`]
    /// notification at the current instant.
    fn finish_reconfig<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        old_fp: u64,
        changed_links: Vec<LinkId>,
        changed_switches: Vec<SwitchId>,
    ) -> u64 {
        let new_fp = fingerprint_topology(&self.topo);
        let epoch = self.reconfig_log.len() as u64 + 1;
        self.rmetrics.epochs.hit();
        self.trace(TraceEvent {
            at_ns: sim.now().nanos(),
            layer: Layer::Fabric,
            kind: TraceKind::Reconfig,
            node: 0,
            src: 0,
            dst: 0,
            generation: 0,
            seq: epoch as u32,
            aux: new_fp,
        });
        self.reconfig_log.push(WiringDelta {
            epoch,
            old_fp,
            new_fp,
            changed_links,
            changed_switches,
        });
        let now = sim.now();
        sim.schedule(
            now,
            FabricEvent::Reconfigured {
                epoch,
                old_fp,
                new_fp,
            }
            .into(),
        );
        epoch
    }

    /// The switches incident to a set of link endpoints, deduplicated in
    /// first-appearance order — the patch region of a wiring delta.
    fn switches_of(endpoints: &[Endpoint]) -> Vec<SwitchId> {
        let mut out = Vec::new();
        for ep in endpoints {
            if let Some((s, _)) = ep.switch() {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Grow per-link state (channels, busy counters, drain flags) to cover
    /// the current link id space, and reset the pair for a (re)wired id.
    fn provision_link_state(&mut self, id: LinkId) {
        while self.channels.len() < self.topo.num_links() * 2 {
            self.channels.push(Channel {
                owner: None,
                waiters: VecDeque::new(),
                alive: true,
                acquired_at: Time::ZERO,
            });
        }
        while self.metrics.link_busy.len() < self.topo.num_links() {
            let l = self.metrics.link_busy.len();
            self.metrics
                .link_busy
                .push(self.tel.counter(&format!("fabric.link.{l}.busy_ns")));
        }
        self.draining.resize(self.topo.num_links(), false);
        self.drain_started.resize(self.topo.num_links(), Time::ZERO);
        for dir in 0..2 {
            let c = &mut self.channels[id.idx() * 2 + dir];
            debug_assert!(c.owner.is_none(), "revived channel still owned");
            c.owner = None;
            c.waiters.clear();
            c.alive = true;
            c.acquired_at = Time::ZERO;
        }
        self.draining[id.idx()] = false;
    }

    /// Live link addition: wire two free ports, provision channel and
    /// metric state for the (possibly reused) id, and seal the epoch.
    /// Traffic can cross the new link from this instant on.
    pub fn grow_link<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        a: Endpoint,
        b: Endpoint,
        _out: &mut Vec<FabricOut>,
    ) -> Result<LinkId, WireError> {
        let old_fp = fingerprint_topology(&self.topo);
        let id = self.topo.try_connect(a, b)?;
        self.provision_link_state(id);
        self.rmetrics.links_added.hit();
        self.finish_reconfig(sim, old_fp, vec![id], Self::switches_of(&[a, b]));
        self.flush_trace();
        Ok(id)
    }

    /// Announce a planned removal: the link keeps carrying in-flight
    /// traffic, but [`Engine::planner_filter`] stops offering it. A later
    /// [`Engine::shrink_link`] completes the removal and records the drain
    /// duration.
    pub fn drain_link<E: From<FabricEvent>>(&mut self, sim: &mut Sim<E>, link: LinkId) {
        if self.topo.try_link(link).is_none() || self.draining[link.idx()] {
            return;
        }
        self.draining[link.idx()] = true;
        self.drain_started[link.idx()] = sim.now();
    }

    /// Is any flight currently holding or waiting on this link? Drivers
    /// poll this to decide when a draining link is safe to detach early.
    pub fn link_idle(&self, link: LinkId) -> bool {
        self.count_flights_on(|ch| LinkId(ch / 2) == link) == 0
    }

    /// Live link removal: kill whatever is still in flight on the link
    /// (counted as `reconfig.inflight_lost` — zero for a completed drain),
    /// detach it from the topology, and seal the epoch. The freed link id
    /// goes back on the LIFO stack for future grows.
    pub fn shrink_link<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        link: LinkId,
        out: &mut Vec<FabricOut>,
    ) -> Option<Link> {
        self.topo.try_link(link)?;
        let old_fp = fingerprint_topology(&self.topo);
        let lost = self.count_flights_on(|ch| LinkId(ch / 2) == link);
        self.rmetrics.inflight_lost.add(lost);
        self.set_link_alive(sim, link, false, out);
        if self.draining[link.idx()] {
            self.rmetrics
                .drain_ns
                .record(sim.now().since(self.drain_started[link.idx()]));
            self.draining[link.idx()] = false;
        }
        let gone = self.topo.disconnect(link);
        self.rmetrics.links_removed.hit();
        self.finish_reconfig(
            sim,
            old_fp,
            vec![link],
            Self::switches_of(&[gone.a, gone.b]),
        );
        self.flush_trace();
        Some(gone)
    }

    /// Live switch removal: detach every incident link (in-flight traffic
    /// on them is lost and counted), then seal a single epoch covering the
    /// whole de-rack. The switch record remains with zero wired ports.
    /// Returns the sealed epoch (0 if the switch had no wired links); the
    /// detached link list is in [`Engine::reconfig_log`] under that epoch.
    pub fn shrink_switch<E: From<FabricEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        s: SwitchId,
        out: &mut Vec<FabricOut>,
    ) -> u64 {
        let old_fp = fingerprint_topology(&self.topo);
        let incident: Vec<LinkId> = self
            .topo
            .links()
            .filter(|(_, l)| {
                [l.a, l.b]
                    .iter()
                    .any(|ep| ep.switch().is_some_and(|(sw, _)| sw == s))
            })
            .map(|(id, _)| id)
            .collect();
        if incident.is_empty() {
            return 0;
        }
        let lost = self.count_flights_on(|ch| incident.contains(&LinkId(ch / 2)));
        self.rmetrics.inflight_lost.add(lost);
        let mut endpoints = Vec::new();
        for &link in &incident {
            self.set_link_alive(sim, link, false, out);
            if self.draining[link.idx()] {
                self.rmetrics
                    .drain_ns
                    .record(sim.now().since(self.drain_started[link.idx()]));
                self.draining[link.idx()] = false;
            }
            let gone = self.topo.disconnect(link);
            self.rmetrics.links_removed.hit();
            endpoints.push(gone.a);
            endpoints.push(gone.b);
        }
        let mut switches = Self::switches_of(&endpoints);
        if !switches.contains(&s) {
            switches.push(s);
        }
        let epoch = self.finish_reconfig(sim, old_fp, incident, switches);
        self.flush_trace();
        epoch
    }

    // -- sharding -----------------------------------------------------------

    /// Install the link-ownership map for a sharded run. With no map (the
    /// default) the engine is the serial engine, byte-identical traces and
    /// all; with one, flights reaching a foreign link are handed off as
    /// [`PortalCrossing`]s instead of acquiring it.
    pub fn set_shard_map(&mut self, map: ShardMap) {
        debug_assert!(
            map.link_owner.len() >= self.topo.num_links(),
            "shard map shorter than the link table"
        );
        self.shard_map = Some(map);
    }
}
