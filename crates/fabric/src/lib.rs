//! # san-fabric — Myrinet-like system-area-network fabric model
//!
//! This crate models the interconnect of the paper's testbed: full-crossbar
//! switches joined by full-duplex 1.28 Gb/s links, source-routed cut-through
//! (wormhole) packet forwarding with blocking backpressure, per-packet CRC-32
//! protection, a per-source path-reset (deadlock recovery) timer, and fault
//! injection for both transient errors (packet loss and corruption on the
//! wire) and permanent failures (link and switch death).
//!
//! The model is packet-level, not flit-level: a packet acquires the directed
//! channels along its source route one hop at a time, holding everything
//! already acquired (that is what makes backpressure — and genuine deadlock —
//! possible), and releases the whole chain when its tail reaches the
//! destination. Serialization is paid once end-to-end, which is the
//! cut-through behaviour of real Myrinet.
//!
//! Layering: `san-fabric` knows nothing about NICs or protocols. It delivers
//! [`engine::FabricOut`] values (deliveries, drops, path resets) to whoever
//! drives the simulation loop — see `san_nic::Cluster`.

pub mod crc;
pub mod engine;
pub mod fault;
pub mod fingerprint;
pub mod hints;
pub mod ids;
pub mod packet;
pub mod route;
pub mod topology;
pub mod updown;

pub use engine::{DropReason, Engine, EngineConfig, FabricEvent, FabricOut};
pub use fault::{FaultPlan, PermanentFault, TransientFaults};
pub use fingerprint::{fingerprint_topology, Fnv, WiringDelta};
pub use hints::RouteHints;
pub use ids::{Endpoint, LinkId, NodeId, PortId, SwitchId};
pub use packet::{Packet, PacketFlags, PacketKind};
pub use route::Route;
pub use topology::{Topology, WireError};
