//! CRC-32 (IEEE 802.3 polynomial), as computed by the Myrinet network DMA.
//!
//! On the paper's hardware the send-side network DMA appends a 32-bit CRC to
//! every packet and the receive-side DMA recomputes it; the MCP compares the
//! two to detect corruption (§3.3). We implement the same polynomial with a
//! byte-at-a-time table, which is plenty fast for simulation volumes and
//! trivially verifiable against the published check value.

/// Lazily built 256-entry table for the reflected IEEE polynomial 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Compute the CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed successive chunks with the running register value.
/// Start from `0xFFFF_FFFF` and xor the final register with `0xFFFF_FFFF`.
#[inline]
pub fn crc32_update(mut reg: u32, data: &[u8]) -> u32 {
    for &b in data {
        reg = TABLE[((reg ^ b as u32) & 0xFF) as usize] ^ (reg >> 8);
    }
    reg
}

/// A two-part CRC over a packet's header bytes and payload, mirroring how the
/// hardware covers the whole frame.
pub fn crc32_frame(header: &[u8], payload: &[u8]) -> u32 {
    let reg = crc32_update(0xFFFF_FFFF, header);
    crc32_update(reg, payload) ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let whole = crc32(&data);
        let mut reg = 0xFFFF_FFFFu32;
        for chunk in data.chunks(13) {
            reg = crc32_update(reg, chunk);
        }
        assert_eq!(reg ^ 0xFFFF_FFFF, whole);
        assert_eq!(crc32_frame(&data[..100], &data[100..]), whole);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7) as u8).collect();
        let base = crc32(&data);
        for bit in [0usize, 1, 500 * 8 + 3, 1023 * 8 + 7] {
            let mut corrupted = data.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupted), base, "flip at bit {bit} undetected");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any single-bit corruption is detected (CRC-32 detects all 1-bit
        /// errors by construction).
        #[test]
        fn detects_any_single_bit_error(
            data in proptest::collection::vec(any::<u8>(), 1..512),
            bit in any::<usize>(),
        ) {
            let base = crc32(&data);
            let mut mutated = data.clone();
            let bit = bit % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            prop_assert_ne!(crc32(&mutated), base);
        }

        /// Chunked streaming always matches the one-shot computation.
        #[test]
        fn streaming_consistency(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            split in any::<usize>(),
        ) {
            let split = if data.is_empty() { 0 } else { split % data.len() };
            prop_assert_eq!(crc32_frame(&data[..split], &data[split..]), crc32(&data));
        }
    }
}
