//! Fault models.
//!
//! The paper distinguishes transient failures (packet corruption and loss,
//! §3.3) from permanent ones (link/switch death, §4.2). Three injection
//! mechanisms exist in this reproduction:
//!
//! 1. **Send-side deterministic drop** — the paper's own mechanism (§5.1.3):
//!    at predefined packet counts the sending NIC puts the next packet in the
//!    retransmission queue *without* transmitting it. That one lives in the
//!    NIC firmware (`san_ft::ReliableFirmware`), not here, because that is
//!    where the paper put it.
//! 2. **Wire-level transient faults** ([`TransientFaults`]) — Bernoulli loss
//!    and corruption per packet, drawn by the fabric engine at injection.
//!    Used by robustness tests to check that the protocol's guarantees do not
//!    depend on the *location* of the loss.
//! 3. **Permanent faults** ([`FaultPlan`]) — scheduled link/switch deaths and
//!    repairs, compiled into fabric events at simulation start.

use san_sim::{Sim, SimRng, Time};
use serde::{Deserialize, Serialize};

use crate::engine::FabricEvent;
use crate::ids::{Endpoint, LinkId, SwitchId};

/// Per-packet wire-fault model.
///
/// The independent (Bernoulli) mode is the paper's; the **bursty** mode is
/// the extension the paper explicitly leaves untested (§5.1.3: "we do not
/// experiment with bursty errors, since high, uniform error rates are a more
/// stressful test") — a Gilbert–Elliott two-state channel that alternates
/// between a good state (no faults) and a bad state where every packet is
/// lost/corrupted with the given probabilities.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransientFaults {
    /// Probability a packet silently vanishes on the wire (in the bad state
    /// when `burst` is set, else independently per packet).
    pub loss_prob: f64,
    /// Probability a packet is delivered with a failing CRC (ditto).
    pub corrupt_prob: f64,
    /// Optional Gilbert–Elliott burst structure.
    pub burst: Option<BurstModel>,
}

/// Gilbert–Elliott channel parameters (per-packet state transitions).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BurstModel {
    /// Probability of entering the bad state on each packet while good.
    pub p_enter: f64,
    /// Probability of leaving the bad state on each packet while bad.
    pub p_leave: f64,
}

impl BurstModel {
    /// Long-run fraction of packets spent in the bad state.
    pub fn bad_fraction(&self) -> f64 {
        self.p_enter / (self.p_enter + self.p_leave)
    }
    /// Mean burst length in packets.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_leave
    }
    /// Advance the channel by one packet from state `bad` (true = bad),
    /// returning the new state. This is the per-packet transition the
    /// fabric engine applies at injection; it lives here so statistical
    /// tests exercise the production chain, not a re-derivation.
    pub fn step(&self, bad: bool, rng: &mut SimRng) -> bool {
        if bad {
            !rng.chance(self.p_leave)
        } else {
            rng.chance(self.p_enter)
        }
    }
}

impl TransientFaults {
    /// No wire faults.
    pub fn none() -> Self {
        Self {
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            burst: None,
        }
    }
    /// Independent loss only.
    pub fn loss(p: f64) -> Self {
        Self {
            loss_prob: p,
            corrupt_prob: 0.0,
            burst: None,
        }
    }
    /// Independent corruption only.
    pub fn corruption(p: f64) -> Self {
        Self {
            loss_prob: 0.0,
            corrupt_prob: p,
            burst: None,
        }
    }
    /// Bursty loss with the same *average* rate as independent loss of
    /// `avg_rate`, in bursts of `mean_len` packets: while the channel is
    /// bad, every packet is lost.
    pub fn bursty_loss(avg_rate: f64, mean_len: f64) -> Self {
        assert!(avg_rate > 0.0 && avg_rate < 1.0 && mean_len >= 1.0);
        let p_leave = 1.0 / mean_len;
        // bad_fraction = p_enter / (p_enter + p_leave) = avg_rate
        let p_enter = avg_rate * p_leave / (1.0 - avg_rate);
        Self {
            loss_prob: 1.0,
            corrupt_prob: 0.0,
            burst: Some(BurstModel { p_enter, p_leave }),
        }
    }
    /// True when no fault can ever fire.
    pub fn is_none(&self) -> bool {
        self.loss_prob == 0.0 && self.corrupt_prob == 0.0
    }
}

/// One scheduled permanent-fault action.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum PermanentFault {
    /// Link dies at the given time.
    LinkDown {
        /// When.
        at_nanos: u64,
        /// Which link.
        link: u32,
    },
    /// Link is repaired / connected at the given time.
    LinkUp {
        /// When.
        at_nanos: u64,
        /// Which link.
        link: u32,
    },
    /// Whole switch dies at the given time.
    SwitchDown {
        /// When.
        at_nanos: u64,
        /// Which switch.
        switch: u16,
    },
    /// Reconfiguration: a new link is wired between two free ports
    /// (`GrowFabric`).
    GrowLink {
        /// When.
        at_nanos: u64,
        /// One side.
        a: Endpoint,
        /// The other side.
        b: Endpoint,
    },
    /// Reconfiguration: a link's planned removal is announced — planners
    /// stop offering it while in-flight traffic completes.
    DrainLink {
        /// When.
        at_nanos: u64,
        /// Which link.
        link: u32,
    },
    /// Reconfiguration: a link detaches from the fabric (`ShrinkFabric`;
    /// paired with an earlier [`PermanentFault::DrainLink`] when planned).
    RemoveLink {
        /// When.
        at_nanos: u64,
        /// Which link.
        link: u32,
    },
    /// Reconfiguration: a whole switch is de-racked, all links detaching
    /// (`ShrinkFabric`; unplanned when no drain preceded it).
    RemoveSwitch {
        /// When.
        at_nanos: u64,
        /// Which switch.
        switch: u16,
    },
}

impl PermanentFault {
    /// When the fault fires.
    pub fn at(&self) -> Time {
        match *self {
            PermanentFault::LinkDown { at_nanos, .. }
            | PermanentFault::LinkUp { at_nanos, .. }
            | PermanentFault::SwitchDown { at_nanos, .. }
            | PermanentFault::GrowLink { at_nanos, .. }
            | PermanentFault::DrainLink { at_nanos, .. }
            | PermanentFault::RemoveLink { at_nanos, .. }
            | PermanentFault::RemoveSwitch { at_nanos, .. } => Time::from_nanos(at_nanos),
        }
    }

    /// Total tie-break key for same-instant actions: deaths apply before
    /// repairs (so a down+up pair at the same tick leaves the component
    /// alive — the repair is the later intent), removals apply with the
    /// deaths (drain strictly before detach), and grows apply last (a
    /// detach+grow pair at the same tick is a re-cable whose new wiring is
    /// the later intent). The remaining fields make the ordering canonical
    /// regardless of listing order.
    fn rank(&self) -> (u8, u8, u32) {
        match *self {
            PermanentFault::LinkDown { link, .. } => (0, 0, link),
            PermanentFault::SwitchDown { switch, .. } => (0, 1, switch as u32),
            PermanentFault::DrainLink { link, .. } => (0, 2, link),
            PermanentFault::RemoveLink { link, .. } => (0, 3, link),
            PermanentFault::RemoveSwitch { switch, .. } => (0, 4, switch as u32),
            PermanentFault::LinkUp { link, .. } => (1, 0, link),
            PermanentFault::GrowLink { .. } => (2, 0, 0),
        }
    }

    /// The fabric event this fault compiles to.
    pub fn event(&self) -> FabricEvent {
        match *self {
            PermanentFault::LinkDown { link, .. } => FabricEvent::LinkDown { link: LinkId(link) },
            PermanentFault::LinkUp { link, .. } => FabricEvent::LinkUp { link: LinkId(link) },
            PermanentFault::SwitchDown { switch, .. } => FabricEvent::SwitchDown {
                switch: SwitchId(switch),
            },
            PermanentFault::GrowLink { a, b, .. } => FabricEvent::GrowLink { a, b },
            PermanentFault::DrainLink { link, .. } => FabricEvent::DrainLink { link: LinkId(link) },
            PermanentFault::RemoveLink { link, .. } => {
                FabricEvent::RemoveLink { link: LinkId(link) }
            }
            PermanentFault::RemoveSwitch { switch, .. } => FabricEvent::RemoveSwitch {
                switch: SwitchId(switch),
            },
        }
    }
}

/// A schedule of permanent faults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled actions (any order; scheduling sorts by time).
    pub actions: Vec<PermanentFault>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill `link` at `at`.
    pub fn link_down(mut self, at: Time, link: LinkId) -> Self {
        self.actions.push(PermanentFault::LinkDown {
            at_nanos: at.nanos(),
            link: link.0,
        });
        self
    }

    /// Bring `link` up at `at` (reconfiguration: a node re-connected
    /// elsewhere is modelled as old-link down + new-link up).
    pub fn link_up(mut self, at: Time, link: LinkId) -> Self {
        self.actions.push(PermanentFault::LinkUp {
            at_nanos: at.nanos(),
            link: link.0,
        });
        self
    }

    /// Kill `switch` at `at`.
    pub fn switch_down(mut self, at: Time, s: SwitchId) -> Self {
        self.actions.push(PermanentFault::SwitchDown {
            at_nanos: at.nanos(),
            switch: s.0,
        });
        self
    }

    /// Wire a new link between two free ports at `at` (`GrowFabric`).
    pub fn grow_link(mut self, at: Time, a: Endpoint, b: Endpoint) -> Self {
        self.actions.push(PermanentFault::GrowLink {
            at_nanos: at.nanos(),
            a,
            b,
        });
        self
    }

    /// Announce `link`'s planned removal at `at`: planners stop offering it
    /// while in-flight traffic completes.
    pub fn drain_link(mut self, at: Time, link: LinkId) -> Self {
        self.actions.push(PermanentFault::DrainLink {
            at_nanos: at.nanos(),
            link: link.0,
        });
        self
    }

    /// Detach `link` from the fabric at `at` (`ShrinkFabric`).
    pub fn remove_link(mut self, at: Time, link: LinkId) -> Self {
        self.actions.push(PermanentFault::RemoveLink {
            at_nanos: at.nanos(),
            link: link.0,
        });
        self
    }

    /// De-rack `switch` at `at`, detaching all of its links
    /// (`ShrinkFabric`; unplanned when no drain preceded it).
    pub fn remove_switch(mut self, at: Time, s: SwitchId) -> Self {
        self.actions.push(PermanentFault::RemoveSwitch {
            at_nanos: at.nanos(),
            switch: s.0,
        });
        self
    }

    /// Schedule every action into the simulation.
    ///
    /// Same-instant events apply in the order scheduled (the event queue
    /// breaks time ties by insertion order), so actions are sorted by
    /// (time, death-before-repair) first: a repair listed *before* a death
    /// at the same tick would otherwise win by Vec position and leave the
    /// link dead.
    pub fn arm<E: From<FabricEvent>>(&self, sim: &mut Sim<E>) {
        let mut actions = self.actions.clone();
        actions.sort_by_key(|a| (a.at(), a.rank()));
        for a in &actions {
            sim.schedule(a.at(), a.event().into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(TransientFaults::none().is_none());
        assert!(!TransientFaults::loss(0.1).is_none());
        assert_eq!(TransientFaults::corruption(0.2).corrupt_prob, 0.2);
    }

    #[test]
    fn same_tick_repair_and_death_apply_death_first() {
        // A repair listed *before* a death at the same instant: the armed
        // schedule must still apply death → repair, leaving the link alive.
        let t = Time::from_millis(3);
        let plan = FaultPlan::new()
            .link_up(t, LinkId(5))
            .link_down(t, LinkId(5));
        let mut sim: Sim<FabricEvent> = Sim::new(0);
        plan.arm(&mut sim);
        let (t0, first) = sim.pop().unwrap();
        let (t1, second) = sim.pop().unwrap();
        assert_eq!((t0, t1), (t, t));
        assert!(
            matches!(first, FabricEvent::LinkDown { link } if link == LinkId(5)),
            "death must be scheduled first"
        );
        assert!(matches!(second, FabricEvent::LinkUp { link } if link == LinkId(5)));
    }

    #[test]
    fn same_tick_ordering_is_deterministic_under_permutation() {
        // Both listing orders compile to the identical schedule.
        let t = Time::from_millis(1);
        let a = FaultPlan::new()
            .link_down(t, LinkId(2))
            .link_up(t, LinkId(2))
            .switch_down(t, SwitchId(0));
        let b = FaultPlan::new()
            .link_up(t, LinkId(2))
            .switch_down(t, SwitchId(0))
            .link_down(t, LinkId(2));
        let drain = |plan: &FaultPlan| {
            let mut sim: Sim<FabricEvent> = Sim::new(0);
            plan.arm(&mut sim);
            let mut out = Vec::new();
            while let Some((at, ev)) = sim.pop() {
                out.push(format!("{at:?}/{ev:?}"));
            }
            out
        };
        assert_eq!(drain(&a), drain(&b));
        // Deaths (in listed order) precede the repair.
        assert!(drain(&a)[0].contains("LinkDown"));
        assert!(drain(&a)[1].contains("SwitchDown"));
        assert!(drain(&a)[2].contains("LinkUp"));
    }

    #[test]
    fn plan_compiles_to_events() {
        let plan = FaultPlan::new()
            .link_down(Time::from_millis(5), LinkId(3))
            .link_up(Time::from_millis(7), LinkId(4))
            .switch_down(Time::from_millis(9), SwitchId(1));
        assert_eq!(plan.actions.len(), 3);
        assert_eq!(plan.actions[0].at(), Time::from_millis(5));
        let mut sim: Sim<FabricEvent> = Sim::new(0);
        plan.arm(&mut sim);
        assert_eq!(sim.pending(), 3);
        let (t, ev) = sim.pop().unwrap();
        assert_eq!(t, Time::from_millis(5));
        assert!(matches!(ev, FabricEvent::LinkDown { link } if link == LinkId(3)));
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;

    /// Run the chain for `n` packets and return (empirical bad fraction,
    /// empirical mean burst length over completed bursts).
    fn empirical_moments(b: BurstModel, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = SimRng::seed_from(seed);
        let mut bad = false;
        let mut bad_packets = 0usize;
        let mut bursts = 0usize;
        for _ in 0..n {
            let was_bad = bad;
            bad = b.step(bad, &mut rng);
            if bad {
                bad_packets += 1;
                if !was_bad {
                    bursts += 1;
                }
            }
        }
        let frac = bad_packets as f64 / n as f64;
        let mean_len = if bursts == 0 {
            0.0
        } else {
            bad_packets as f64 / bursts as f64
        };
        (frac, mean_len)
    }

    #[test]
    fn degenerate_never_enter_stays_good() {
        // p_enter = 0: the channel never leaves the good state.
        let b = BurstModel {
            p_enter: 0.0,
            p_leave: 0.5,
        };
        assert_eq!(b.bad_fraction(), 0.0);
        let (frac, _) = empirical_moments(b, 17, 10_000);
        assert_eq!(frac, 0.0, "p_enter=0 must never produce a bad packet");
    }

    #[test]
    fn degenerate_instant_leave_gives_unit_bursts() {
        // p_leave = 1: every burst is exactly one packet long.
        let b = BurstModel {
            p_enter: 0.3,
            p_leave: 1.0,
        };
        assert_eq!(b.mean_burst_len(), 1.0);
        let mut rng = SimRng::seed_from(23);
        let mut bad = false;
        let mut prev_bad = false;
        let mut saw_bad = false;
        for _ in 0..10_000 {
            bad = b.step(bad, &mut rng);
            assert!(
                !(bad && prev_bad),
                "p_leave=1 forbids two consecutive bad packets"
            );
            saw_bad |= bad;
            prev_bad = bad;
        }
        assert!(saw_bad, "p_enter=0.3 must enter the bad state sometimes");
    }

    #[test]
    fn burst_parameters_have_the_right_moments() {
        let f = TransientFaults::bursty_loss(0.01, 10.0);
        let b = f.burst.unwrap();
        assert!(
            (b.bad_fraction() - 0.01).abs() < 1e-12,
            "average rate preserved"
        );
        assert!((b.mean_burst_len() - 10.0).abs() < 1e-12);
        assert_eq!(f.loss_prob, 1.0, "inside a burst every packet dies");
    }

    #[test]
    #[should_panic]
    fn bursty_loss_rejects_bad_rates() {
        let _ = TransientFaults::bursty_loss(1.5, 10.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// The analytic moments — `bad_fraction()` and
            /// `mean_burst_len()` — must match the empirical frequencies of
            /// the sampled Gilbert–Elliott chain within statistical
            /// tolerance, for arbitrary parameters and seeds.
            #[test]
            fn analytic_moments_match_sampled_chain(
                p_enter in 0.02f64..0.25,
                p_leave in 0.25f64..0.95,
                seed in 0u64..10_000,
            ) {
                let b = BurstModel { p_enter, p_leave };
                let n = 120_000;
                let (frac, mean_len) = empirical_moments(b, seed, n);
                let want_frac = b.bad_fraction();
                let want_len = b.mean_burst_len();
                // Bursty chains mix slowly, so allow a generous (but still
                // regression-catching) 20% relative band.
                prop_assert!(
                    (frac - want_frac).abs() / want_frac < 0.20,
                    "bad fraction: empirical {frac:.4} vs analytic {want_frac:.4}"
                );
                prop_assert!(
                    (mean_len - want_len).abs() / want_len < 0.20,
                    "burst length: empirical {mean_len:.3} vs analytic {want_len:.3}"
                );
            }

            /// Degenerate corners sampled across seeds: p_enter=0 never
            /// goes bad; p_leave=1 caps every burst at one packet.
            #[test]
            fn degenerate_corners_behave(seed in 0u64..10_000) {
                let never = BurstModel { p_enter: 0.0, p_leave: 0.7 };
                let (frac, _) = empirical_moments(never, seed, 5_000);
                prop_assert_eq!(frac, 0.0);

                let unit = BurstModel { p_enter: 0.4, p_leave: 1.0 };
                let (_, mean_len) = empirical_moments(unit, seed, 20_000);
                prop_assert!(
                    (mean_len - 1.0).abs() < 1e-12,
                    "every burst must be exactly 1 packet, got {mean_len}"
                );
            }
        }
    }
}
