//! UP*/DOWN* deadlock-free routing — the full-map baseline.
//!
//! The classic algorithm the Myrinet mapper uses (§4.2, refs [10, 26, 29]):
//! build a spanning tree of the switches by BFS, orient every link "up"
//! (toward the root: lower BFS level, ties broken by lower switch id), and
//! allow only routes consisting of zero or more up channels followed by zero
//! or more down channels. Such routes cannot form a cyclic channel
//! dependency, hence no deadlock — at the cost of generally non-minimal
//! paths and a *full* network map.
//!
//! The paper's contribution replaces this with on-demand partial mapping and
//! accepts possibly-deadlocking routes (recovered by path reset +
//! retransmission); this module is the baseline it is compared against, and
//! also the source of initial route tables for experiments that start from a
//! correctly mapped network.

use std::collections::VecDeque;

use crate::ids::{Endpoint, LinkId, NodeId, PortId, SwitchId};
use crate::route::{Route, MAX_HOPS};
use crate::topology::Topology;

/// The result of a full UP*/DOWN* mapping pass.
#[derive(Debug, Clone)]
pub struct UpDownMap {
    /// BFS level of each switch from the root (None = unreachable).
    pub level: Vec<Option<u32>>,
    /// The root switch chosen.
    pub root: SwitchId,
}

/// Direction of a traversal step relative to the spanning-tree orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
}

/// Compute BFS levels from `root` over alive links.
pub fn bfs_levels(
    topo: &Topology,
    root: SwitchId,
    alive: &impl Fn(LinkId) -> bool,
) -> Vec<Option<u32>> {
    let mut level = vec![None; topo.num_switches()];
    level[root.idx()] = Some(0);
    let mut q = VecDeque::from([root]);
    while let Some(s) = q.pop_front() {
        let l = level[s.idx()].unwrap();
        for p in 0..topo.switch_ports(s) {
            let Some(link) = topo.link_at(Endpoint::Switch(s, PortId(p))) else {
                continue;
            };
            if !alive(link) {
                continue;
            }
            if let Endpoint::Switch(s2, _) = topo.link(link).other(Endpoint::Switch(s, PortId(p))) {
                if level[s2.idx()].is_none() {
                    level[s2.idx()] = Some(l + 1);
                    q.push_back(s2);
                }
            }
        }
    }
    level
}

/// Work accounting for an incremental re-orientation ([`UpDownMap::patch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Switches whose BFS level actually changed.
    pub relabeled: usize,
    /// Switches examined (invalidation fixpoint plus relaxation frontier) —
    /// the size of the region the patch touched. A full rebuild touches
    /// every switch; a local patch touches only the neighborhood of the
    /// changed links.
    pub touched: usize,
}

impl UpDownMap {
    /// Build the orientation for `topo` rooted at the lowest-id switch that
    /// is reachable, considering only alive links.
    pub fn build(topo: &Topology, alive: impl Fn(LinkId) -> bool) -> Option<UpDownMap> {
        if topo.num_switches() == 0 {
            return None;
        }
        let root = SwitchId(0);
        let level = bfs_levels(topo, root, &alive);
        Some(UpDownMap { level, root })
    }

    /// Incrementally repair the orientation after a wiring change, touching
    /// only the affected region. `seeds` are the switches incident to the
    /// changed links (grown *and* removed); the patch result is exactly
    /// equal to a full [`UpDownMap::build`] on the mutated topology — BFS
    /// levels are unique, so "incremental" is a cost statement, not an
    /// approximation (pinned by the `patch_equals_rebuild` proptest).
    ///
    /// Two passes:
    /// 1. **Invalidation fixpoint** (handles removals): a non-root switch's
    ///    level is *supported* if some alive neighbor one level closer to
    ///    the root is itself clean. Unsupported switches go dirty and their
    ///    dependents are re-checked until nothing changes; dirty levels are
    ///    cleared. Removals only lengthen distances, so clean levels stay
    ///    exact.
    /// 2. **Relaxation** (handles additions and re-levels the dirty
    ///    region): unit-weight Dijkstra seeded from the clean boundary and
    ///    from the seed switches, settling each touched switch at its true
    ///    new distance.
    pub fn patch(
        &mut self,
        topo: &Topology,
        alive: impl Fn(LinkId) -> bool,
        seeds: &[SwitchId],
    ) -> PatchStats {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Grown switches extend the level vector (unreachable until wired).
        self.level.resize(topo.num_switches(), None);
        let old = self.level.clone();
        self.level[self.root.idx()] = Some(0);

        let sw_neighbors = |s: SwitchId| {
            topo.neighbors(s).filter_map(|(_, link, far)| {
                if !alive(link) {
                    return None;
                }
                far.switch().map(|(s2, _)| s2)
            })
        };

        // Pass 1: invalidation fixpoint.
        let mut dirty = vec![false; topo.num_switches()];
        let mut queued = vec![false; topo.num_switches()];
        let mut work: VecDeque<SwitchId> = VecDeque::new();
        let mut touched = 0usize;
        for &s in seeds {
            if s.idx() < queued.len() && !queued[s.idx()] {
                queued[s.idx()] = true;
                work.push_back(s);
            }
        }
        while let Some(s) = work.pop_front() {
            queued[s.idx()] = false;
            touched += 1;
            if s == self.root || dirty[s.idx()] {
                continue;
            }
            let Some(l) = self.level[s.idx()] else {
                continue; // unreachable levels cannot be stale-low
            };
            let supported = l.checked_sub(1).is_some_and(|lp| {
                sw_neighbors(s).any(|n| !dirty[n.idx()] && self.level[n.idx()] == Some(lp))
            });
            if !supported {
                dirty[s.idx()] = true;
                // Anything that might have leaned on s must be re-checked.
                for n in sw_neighbors(s) {
                    if !queued[n.idx()] && !dirty[n.idx()] {
                        queued[n.idx()] = true;
                        work.push_back(n);
                    }
                }
            }
        }
        for (i, d) in dirty.iter().enumerate() {
            if *d {
                self.level[i] = None;
            }
        }

        // Pass 2: unit-weight Dijkstra over the dirty region and any
        // improvements the changed links introduced.
        let mut heap: BinaryHeap<Reverse<(u32, u16)>> = BinaryHeap::new();
        for (i, d) in dirty.iter().enumerate() {
            if !*d {
                continue;
            }
            // Clean boundary around the dirty region.
            for n in sw_neighbors(SwitchId(i as u16)) {
                if let Some(ln) = self.level[n.idx()] {
                    heap.push(Reverse((ln, n.0)));
                }
            }
        }
        for &s in seeds {
            if let Some(l) = self.level[s.idx()] {
                heap.push(Reverse((l, s.0)));
            }
        }
        while let Some(Reverse((d, s))) = heap.pop() {
            let s = SwitchId(s);
            match self.level[s.idx()] {
                Some(l) if l < d => continue, // stale queue entry
                _ => {}
            }
            touched += 1;
            self.level[s.idx()] = Some(d);
            for n in sw_neighbors(s) {
                let cand = d + 1;
                if self.level[n.idx()].is_none_or(|ln| ln > cand) {
                    heap.push(Reverse((cand, n.0)));
                }
            }
        }

        let relabeled = old
            .iter()
            .zip(self.level.iter())
            .filter(|(o, n)| o != n)
            .count();
        PatchStats { relabeled, touched }
    }

    /// Is traversing from switch `a` to switch `b` an **up** step?
    /// Up = toward the root: strictly lower level, ties broken by lower id.
    fn step_dir(&self, a: SwitchId, b: SwitchId) -> Option<Dir> {
        let (la, lb) = (self.level[a.idx()]?, self.level[b.idx()]?);
        Some(if (lb, b.0) < (la, a.0) {
            Dir::Up
        } else {
            Dir::Down
        })
    }

    /// Compute an UP*/DOWN*-legal route from `from` to `to`, shortest among
    /// legal routes (BFS over (switch, phase) states).
    pub fn route(
        &self,
        topo: &Topology,
        from: NodeId,
        to: NodeId,
        alive: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        if from == to {
            return Some(Route::empty());
        }
        let first = topo.link_at(Endpoint::Host(from))?;
        if !alive(first) {
            return None;
        }
        let s0 = match topo.link(first).other(Endpoint::Host(from)) {
            Endpoint::Host(h) => return (h == to).then(Route::empty),
            Endpoint::Switch(s, _) => s,
        };
        // State: (switch, already_went_down). Once a down step is taken, up
        // steps are forbidden.
        let ns = topo.num_switches();
        let mut seen = vec![[false; 2]; ns];
        let mut q = VecDeque::new();
        seen[s0.idx()][0] = true;
        q.push_back((s0, false, Route::empty()));
        while let Some((s, went_down, route)) = q.pop_front() {
            if route.len() == MAX_HOPS {
                continue;
            }
            for p in 0..topo.switch_ports(s) {
                let Some(link) = topo.link_at(Endpoint::Switch(s, PortId(p))) else {
                    continue;
                };
                if !alive(link) {
                    continue;
                }
                match topo.link(link).other(Endpoint::Switch(s, PortId(p))) {
                    Endpoint::Host(h) if h == to => return Some(route.then(p)),
                    Endpoint::Host(_) => {}
                    Endpoint::Switch(s2, _) => {
                        let Some(dir) = self.step_dir(s, s2) else {
                            continue;
                        };
                        let down2 = match dir {
                            Dir::Up if went_down => continue, // down→up is illegal
                            Dir::Up => false,
                            Dir::Down => true,
                        };
                        let gd = went_down || down2;
                        if !seen[s2.idx()][gd as usize] {
                            seen[s2.idx()][gd as usize] = true;
                            q.push_back((s2, gd, route.then(p)));
                        }
                    }
                }
            }
        }
        None
    }

    /// Compute the full routing table: routes for every ordered host pair
    /// (the "full network map" whose cost the paper's scheme avoids paying).
    pub fn full_table(
        &self,
        topo: &Topology,
        alive: impl Fn(LinkId) -> bool + Copy,
    ) -> Vec<Vec<Option<Route>>> {
        let n = topo.num_hosts();
        (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| self.route(topo, NodeId(a as u16), NodeId(b as u16), alive))
                    .collect()
            })
            .collect()
    }
}

/// Check that a set of routes cannot deadlock: build the channel-waits-for
/// graph (for each route, channel i depends on channel i+1) and verify it is
/// acyclic. Used by tests to prove UP*/DOWN* tables are safe and that the
/// on-demand mapper's tables may *not* be (the paper accepts this).
pub fn routes_deadlock_free(topo: &Topology, routes: &[(NodeId, Route)]) -> bool {
    use std::collections::HashMap;
    // Collect directed channel sequences per route.
    let mut edges: HashMap<(LinkId, bool), Vec<(LinkId, bool)>> = HashMap::new();
    let mut nodes: Vec<(LinkId, bool)> = Vec::new();
    for (src, route) in routes {
        let mut chs = Vec::new();
        let Some(first) = topo.link_at(Endpoint::Host(*src)) else {
            continue;
        };
        let mut at = topo.link(first).other(Endpoint::Host(*src));
        chs.push((first, topo.link(first).a == Endpoint::Host(*src)));
        for &p in route.ports() {
            let Some((s, _)) = at.switch() else { break };
            let Some(link) = topo.link_at(Endpoint::Switch(s, PortId(p))) else {
                break;
            };
            chs.push((link, topo.link(link).a == Endpoint::Switch(s, PortId(p))));
            at = topo.link(link).other(Endpoint::Switch(s, PortId(p)));
        }
        for w in chs.windows(2) {
            edges.entry(w[0]).or_default().push(w[1]);
            nodes.push(w[0]);
            nodes.push(w[1]);
        }
    }
    nodes.sort_unstable_by_key(|&(l, d)| (l.0, d));
    nodes.dedup();
    // DFS cycle check.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let idx: HashMap<(LinkId, bool), usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut mark = vec![Mark::White; nodes.len()];
    fn dfs(
        u: usize,
        nodes: &[(LinkId, bool)],
        idx: &HashMap<(LinkId, bool), usize>,
        edges: &HashMap<(LinkId, bool), Vec<(LinkId, bool)>>,
        mark: &mut [Mark],
    ) -> bool {
        mark[u] = Mark::Grey;
        if let Some(succs) = edges.get(&nodes[u]) {
            for v in succs {
                let vi = idx[v];
                match mark[vi] {
                    Mark::Grey => return false, // cycle
                    Mark::White => {
                        if !dfs(vi, nodes, idx, edges, mark) {
                            return false;
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        mark[u] = Mark::Black;
        true
    }
    for u in 0..nodes.len() {
        if mark[u] == Mark::White && !dfs(u, &nodes, &idx, &edges, &mut mark) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{self, paper_mapping_testbed};

    #[test]
    fn levels_from_root() {
        let tb = paper_mapping_testbed(1);
        let m = UpDownMap::build(&tb.topo, |_| true).unwrap();
        assert_eq!(m.level[0], Some(0));
        assert_eq!(m.level[1], Some(1));
        assert_eq!(m.level[2], Some(1));
        assert_eq!(m.level[3], Some(1));
    }

    #[test]
    fn updown_routes_exist_and_trace() {
        let tb = paper_mapping_testbed(2);
        let m = UpDownMap::build(&tb.topo, |_| true).unwrap();
        for &a in &tb.hosts {
            for &b in &tb.hosts {
                if a == b {
                    continue;
                }
                let r = m.route(&tb.topo, a, b, |_| true).expect("legal route");
                assert_eq!(
                    tb.topo.trace_route(a, &r, |_| true),
                    Some(Endpoint::Host(b)),
                    "route {r:?} from {a} must reach {b}"
                );
            }
        }
    }

    #[test]
    fn full_table_is_deadlock_free() {
        let tb = paper_mapping_testbed(2);
        let m = UpDownMap::build(&tb.topo, |_| true).unwrap();
        let table = m.full_table(&tb.topo, |_| true);
        let mut routes = Vec::new();
        for (a, row) in table.iter().enumerate() {
            for r in row.iter().flatten() {
                routes.push((NodeId(a as u16), *r));
            }
        }
        assert!(routes_deadlock_free(&tb.topo, &routes));
    }

    #[test]
    fn cyclic_routes_detected_as_unsafe() {
        // Build a 3-switch ring with one host per switch, and route every
        // host "the long way around" so channel dependencies form a cycle.
        let mut t = Topology::new();
        let hs: Vec<_> = (0..3).map(|_| t.add_host()).collect();
        let ss: Vec<_> = (0..3).map(|_| t.add_switch(4)).collect();
        for i in 0..3 {
            t.connect_host(hs[i], ss[i], 0);
            t.connect_switches(ss[i], 1, ss[(i + 1) % 3], 2);
        }
        // Clockwise two-hop routes: h_i -> s_i -> s_{i+1} -> s_{i+2} -> h_{i+2}
        let routes: Vec<(NodeId, Route)> = (0..3)
            .map(|i| (hs[i], Route::from_ports(&[1, 1, 0])))
            .collect();
        for (h, r) in &routes {
            let dst = t.trace_route(*h, r, |_| true).unwrap();
            assert!(matches!(dst, Endpoint::Host(_)));
        }
        assert!(
            !routes_deadlock_free(&t, &routes),
            "ring routes must form a cycle"
        );
    }

    #[test]
    fn chain_routes_are_safe() {
        let (t, a, b) = topology::chain(4);
        let r = t.shortest_route(a, b, |_| true).unwrap();
        let rb = t.shortest_route(b, a, |_| true).unwrap();
        assert!(routes_deadlock_free(&t, &[(a, r), (b, rb)]));
    }

    #[test]
    fn patch_tracks_link_removal_and_regrow() {
        let tb = paper_mapping_testbed(1);
        let mut topo = tb.topo.clone();
        let mut m = UpDownMap::build(&topo, |_| true).unwrap();
        // Remove one of the two core-to-core links: levels are unchanged
        // (the twin still supports core1), so the patch relabels nothing.
        let gone = topo.disconnect(tb.redundant_links[0]);
        let seeds: Vec<SwitchId> = [gone.a, gone.b]
            .iter()
            .filter_map(|ep| ep.switch().map(|(s, _)| s))
            .collect();
        let stats = m.patch(&topo, |_| true, &seeds);
        assert_eq!(stats.relabeled, 0);
        assert_eq!(m.level, UpDownMap::build(&topo, |_| true).unwrap().level);
        // Re-grow it: still byte-identical to a fresh build.
        topo.try_connect(gone.a, gone.b).unwrap();
        m.patch(&topo, |_| true, &seeds);
        assert_eq!(m.level, UpDownMap::build(&topo, |_| true).unwrap().level);
    }

    #[test]
    fn patch_relevels_detached_region() {
        // chain(4): levels 0,1,2,3. Cutting the 1-2 link strands switches
        // 2,3 (None); re-wiring restores 2,3.
        let (mut t, _, _) = topology::chain(4);
        let mut m = UpDownMap::build(&t, |_| true).unwrap();
        assert_eq!(m.level, vec![Some(0), Some(1), Some(2), Some(3)]);
        let cut = t
            .links()
            .find(|(_, l)| {
                l.a.switch().map(|(s, _)| s.0) == Some(1)
                    && l.b.switch().map(|(s, _)| s.0) == Some(2)
                    || l.a.switch().map(|(s, _)| s.0) == Some(2)
                        && l.b.switch().map(|(s, _)| s.0) == Some(1)
            })
            .map(|(id, _)| id)
            .expect("1-2 inter-switch link");
        let gone = t.disconnect(cut);
        let stats = m.patch(&t, |_| true, &[SwitchId(1), SwitchId(2)]);
        assert_eq!(m.level, vec![Some(0), Some(1), None, None]);
        assert_eq!(stats.relabeled, 2);
        t.try_connect(gone.a, gone.b).unwrap();
        let stats = m.patch(&t, |_| true, &[SwitchId(1), SwitchId(2)]);
        assert_eq!(m.level, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(stats.relabeled, 2);
    }

    #[test]
    fn patch_extends_to_grown_switches() {
        let (mut t, _, _) = topology::chain(2);
        let mut m = UpDownMap::build(&t, |_| true).unwrap();
        // Grow a brand-new switch wired to switch 1.
        let s2 = t.add_switch(4);
        t.try_connect(
            Endpoint::Switch(SwitchId(1), PortId(3)),
            Endpoint::Switch(s2, PortId(0)),
        )
        .unwrap();
        let stats = m.patch(&t, |_| true, &[SwitchId(1), s2]);
        assert_eq!(m.level, UpDownMap::build(&t, |_| true).unwrap().level);
        assert_eq!(m.level[s2.idx()], Some(2));
        assert_eq!(stats.relabeled, 1);
    }

    #[test]
    fn updown_survives_dead_links() {
        let tb = paper_mapping_testbed(1);
        let dead = [tb.redundant_links[0], tb.redundant_links[1]];
        let alive = |l: LinkId| !dead.contains(&l);
        let m = UpDownMap::build(&tb.topo, alive).unwrap();
        let (a, b) = (tb.hosts[0], tb.hosts[1]);
        let r = m.route(&tb.topo, a, b, alive).expect("detour must exist");
        assert_eq!(tb.topo.trace_route(a, &r, alive), Some(Endpoint::Host(b)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::topology::Topology;
    use proptest::prelude::*;
    use san_sim::SimRng;

    /// Build a random connected multi-switch network.
    fn random_topology(seed: u64, n_switch: usize, n_host: usize, extra: usize) -> Topology {
        let mut rng = SimRng::seed_from(seed);
        let mut t = Topology::new();
        let switches: Vec<_> = (0..n_switch).map(|_| t.add_switch(16)).collect();
        // Random spanning tree.
        for i in 1..n_switch {
            let j = rng.below(i as u64) as usize;
            let pa = (0..16)
                .find(|&p| {
                    t.link_at(Endpoint::Switch(switches[i], PortId(p)))
                        .is_none()
                })
                .unwrap();
            let pb = (0..16)
                .find(|&p| {
                    t.link_at(Endpoint::Switch(switches[j], PortId(p)))
                        .is_none()
                })
                .unwrap();
            t.connect_switches(switches[i], pa, switches[j], pb);
        }
        // Extra redundant links.
        for _ in 0..extra {
            let i = rng.below(n_switch as u64) as usize;
            let j = rng.below(n_switch as u64) as usize;
            if i == j {
                continue;
            }
            let pa = (0..16).find(|&p| {
                t.link_at(Endpoint::Switch(switches[i], PortId(p)))
                    .is_none()
            });
            let pb = (0..16).find(|&p| {
                t.link_at(Endpoint::Switch(switches[j], PortId(p)))
                    .is_none()
            });
            if let (Some(pa), Some(pb)) = (pa, pb) {
                t.connect_switches(switches[i], pa, switches[j], pb);
            }
        }
        // Hosts round-robin across switches.
        for h in 0..n_host {
            let host = t.add_host();
            let s = switches[h % n_switch];
            if let Some(p) = (0..16).find(|&p| t.link_at(Endpoint::Switch(s, PortId(p))).is_none())
            {
                t.connect_host(host, s, p);
            }
        }
        t
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// For any random connected topology, UP*/DOWN* produces routes for
        /// all wired host pairs, the routes trace correctly, and the full
        /// table is deadlock-free.
        #[test]
        fn updown_always_safe(seed in any::<u64>(), n_switch in 2usize..6, n_host in 2usize..8, extra in 0usize..4) {
            let t = random_topology(seed, n_switch, n_host, extra);
            let m = UpDownMap::build(&t, |_| true).unwrap();
            let table = m.full_table(&t, |_| true);
            let mut routes = Vec::new();
            #[allow(clippy::needless_range_loop)] // a/b are also NodeId values
            for a in 0..t.num_hosts() {
                for b in 0..t.num_hosts() {
                    if a == b { continue; }
                    let wired = |h: usize| t.link_at(Endpoint::Host(NodeId(h as u16))).is_some();
                    if wired(a) && wired(b) {
                        let r = table[a][b].expect("connected pair must have a route");
                        prop_assert_eq!(
                            t.trace_route(NodeId(a as u16), &r, |_| true),
                            Some(Endpoint::Host(NodeId(b as u16)))
                        );
                        routes.push((NodeId(a as u16), r));
                    }
                }
            }
            prop_assert!(routes_deadlock_free(&t, &routes));
        }

        /// Incremental patch ≡ full rebuild, for any random mutation
        /// sequence (removals, re-adds, brand-new links) over a random
        /// topology. BFS levels are unique, so equality is exact.
        #[test]
        fn patch_equals_rebuild(seed in any::<u64>(), n_switch in 2usize..7, extra in 0usize..5, steps in 1usize..8) {
            let mut t = random_topology(seed, n_switch, 4, extra);
            let mut m = UpDownMap::build(&t, |_| true).unwrap();
            let mut rng = SimRng::seed_from(seed ^ 0xDB2E_C0F1);
            let mut removed: Vec<(Endpoint, Endpoint)> = Vec::new();
            for _ in 0..steps {
                let seeds: Vec<SwitchId>;
                let choice = rng.below(3);
                if choice == 0 && !removed.is_empty() {
                    // Re-add a previously removed link.
                    let (a, b) = removed.pop().unwrap();
                    if t.try_connect(a, b).is_err() { continue; }
                    seeds = [a, b].iter().filter_map(|ep| ep.switch().map(|(s, _)| s)).collect();
                } else if choice == 1 {
                    // Grow: wire two switches with free ports.
                    let i = rng.below(t.num_switches() as u64) as usize;
                    let j = rng.below(t.num_switches() as u64) as usize;
                    if i == j { continue; }
                    let (si, sj) = (SwitchId(i as u16), SwitchId(j as u16));
                    let (Some(pa), Some(pb)) = (t.free_port(si), t.free_port(sj)) else { continue };
                    if t.try_connect(
                        Endpoint::Switch(si, PortId(pa)),
                        Endpoint::Switch(sj, PortId(pb)),
                    ).is_err() { continue; }
                    seeds = vec![si, sj];
                } else {
                    // Remove a random inter-switch link.
                    let fabric_links: Vec<LinkId> = t
                        .links()
                        .filter(|(_, l)| l.a.switch().is_some() && l.b.switch().is_some())
                        .map(|(id, _)| id)
                        .collect();
                    if fabric_links.is_empty() { continue; }
                    let id = fabric_links[rng.below(fabric_links.len() as u64) as usize];
                    let gone = t.disconnect(id);
                    removed.push((gone.a, gone.b));
                    seeds = [gone.a, gone.b].iter().filter_map(|ep| ep.switch().map(|(s, _)| s)).collect();
                }
                m.patch(&t, |_| true, &seeds);
                let rebuilt = UpDownMap::build(&t, |_| true).unwrap();
                prop_assert_eq!(&m.level, &rebuilt.level, "patch must equal full rebuild");
            }
        }
    }
}
