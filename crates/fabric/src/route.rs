//! Source routes.
//!
//! Myrinet routes are a byte per hop: the output port to take at each switch
//! the packet passes through. The entire route travels in the packet header
//! (§3.1). Routes are short (network diameters of a few hops), so we store
//! them inline — no heap traffic on the per-packet hot path.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of switch hops a route can describe. The paper's testbed
/// has 4 switches; 16 leaves generous room for the random topologies used in
/// property tests.
pub const MAX_HOPS: usize = 16;

/// An inline source route: `ports[i]` is the output port at the i-th switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    ports: [u8; MAX_HOPS],
    len: u8,
}

impl Route {
    /// The empty route (a packet that never enters a switch — host-to-host
    /// direct links do not exist in this model, so an empty route is only
    /// valid in unit tests and as a placeholder).
    pub const fn empty() -> Self {
        Route {
            ports: [0; MAX_HOPS],
            len: 0,
        }
    }

    /// Build from a slice of output ports.
    ///
    /// # Panics
    /// Panics if more than [`MAX_HOPS`] ports are given.
    pub fn from_ports(ports: &[u8]) -> Self {
        assert!(ports.len() <= MAX_HOPS, "route too long: {}", ports.len());
        let mut r = Route::empty();
        r.ports[..ports.len()].copy_from_slice(ports);
        r.len = ports.len() as u8;
        r
    }

    /// Number of hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no hops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The output port for hop `i`.
    #[inline]
    pub fn hop(&self, i: usize) -> u8 {
        debug_assert!(i < self.len());
        self.ports[i]
    }

    /// Ports as a slice.
    #[inline]
    pub fn ports(&self) -> &[u8] {
        &self.ports[..self.len()]
    }

    /// Append one hop, returning the extended route.
    ///
    /// # Panics
    /// Panics when the route is already [`MAX_HOPS`] long.
    pub fn then(mut self, port: u8) -> Self {
        assert!((self.len as usize) < MAX_HOPS, "route overflow");
        self.ports[self.len as usize] = port;
        self.len += 1;
        self
    }

    /// Concatenate two routes.
    pub fn join(self, tail: &Route) -> Self {
        let mut r = self;
        for &p in tail.ports() {
            r = r.then(p);
        }
        r
    }

    /// Reversed hop order. Note: a *usable* return route generally consists
    /// of the reversed **input** ports, which the fabric records during
    /// traversal ([`crate::packet::Packet::reverse_route`]); plain reversal
    /// of output ports is only correct for symmetric two-port paths, so this
    /// is a building block, not a routing oracle.
    pub fn reversed(&self) -> Self {
        let mut r = Route::empty();
        for &p in self.ports().iter().rev() {
            r = r.then(p);
        }
        r
    }
}

impl fmt::Debug for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Route[")?;
        for (i, p) in self.ports().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

impl Default for Route {
    fn default() -> Self {
        Route::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let r = Route::from_ports(&[3, 1, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.hop(0), 3);
        assert_eq!(r.hop(2), 4);
        assert_eq!(r.ports(), &[3, 1, 4]);
        assert!(!r.is_empty());
        assert!(Route::empty().is_empty());
    }

    #[test]
    fn then_and_join() {
        let r = Route::empty().then(7).then(2);
        assert_eq!(r.ports(), &[7, 2]);
        let j = r.join(&Route::from_ports(&[9]));
        assert_eq!(j.ports(), &[7, 2, 9]);
    }

    #[test]
    fn reversed_reverses() {
        let r = Route::from_ports(&[1, 2, 3]).reversed();
        assert_eq!(r.ports(), &[3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "route overflow")]
    fn overflow_panics() {
        let mut r = Route::empty();
        for i in 0..=MAX_HOPS {
            r = r.then(i as u8);
        }
    }

    #[test]
    fn equality_ignores_slack() {
        let a = Route::from_ports(&[1, 2]);
        let mut b = Route::from_ports(&[1, 2, 9]);
        // Shrink b by rebuilding — slack bytes beyond len must not matter.
        b = Route::from_ports(&b.ports()[..2]);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn from_ports_roundtrip(ports in proptest::collection::vec(any::<u8>(), 0..MAX_HOPS)) {
            let r = Route::from_ports(&ports);
            prop_assert_eq!(r.ports(), &ports[..]);
            prop_assert_eq!(r.reversed().reversed(), r);
        }

        #[test]
        fn join_length_adds(
            a in proptest::collection::vec(any::<u8>(), 0..8),
            b in proptest::collection::vec(any::<u8>(), 0..8),
        ) {
            let j = Route::from_ports(&a).join(&Route::from_ports(&b));
            prop_assert_eq!(j.len(), a.len() + b.len());
        }
    }
}
