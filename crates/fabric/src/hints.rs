//! Route-hint envelopes: candidate routes plus planner provenance.
//!
//! The on-demand mapper (`san_ft::Mapper`) accepts externally computed
//! candidate routes as *hints* — tried first, before any probing. Hints
//! used to travel as a bare `Vec<Route>`, which meant telemetry and the
//! chaos runner's reconfig re-offer path could not tell where a hint came
//! from (which planner strategy, which planner epoch, whether the plan was
//! a cache hit). [`RouteHints`] is the typed envelope that carries that
//! provenance alongside the routes. The routes themselves are the only
//! behaviourally significant part; provenance is inert metadata surfaced
//! through mapper stats and traces.

use crate::route::Route;

/// A batch of candidate routes for one destination, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHints {
    /// Candidate source routes toward the destination, best first.
    pub routes: Vec<Route>,
    /// Identifier of the planner strategy that produced the routes
    /// (e.g. `"generic-diverse"`, `"torus-symmetry"`, `"manual"`).
    pub strategy: &'static str,
    /// Planner epoch at offer time. Strategies that replan after wiring
    /// changes bump this so stale re-offers are distinguishable; manual
    /// offers use 0.
    pub epoch: u64,
    /// Whether the plan behind these routes came from a warm cache entry.
    pub cache_hit: bool,
}

impl RouteHints {
    /// Wrap routes that were computed by hand (tests, ad-hoc callers):
    /// strategy `"manual"`, epoch 0, not a cache hit.
    pub fn manual(routes: Vec<Route>) -> Self {
        RouteHints {
            routes,
            strategy: "manual",
            epoch: 0,
            cache_hit: false,
        }
    }

    /// Wrap routes from a named planner strategy.
    pub fn from_strategy(
        routes: Vec<Route>,
        strategy: &'static str,
        epoch: u64,
        cache_hit: bool,
    ) -> Self {
        RouteHints {
            routes,
            strategy,
            epoch,
            cache_hit,
        }
    }

    /// True when there are no candidate routes at all.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_hints_carry_default_provenance() {
        let h = RouteHints::manual(vec![Route::from_ports(&[1, 2])]);
        assert_eq!(h.strategy, "manual");
        assert_eq!(h.epoch, 0);
        assert!(!h.cache_hit);
        assert!(!h.is_empty());
        assert!(RouteHints::manual(vec![]).is_empty());
    }
}
