//! Behavioural tests of the fabric traversal engine: timing, contention,
//! fault injection, deadlock and path reset.

use san_fabric::engine::{DropReason, Engine, EngineConfig, FabricEvent, FabricOut};
use san_fabric::ids::{Endpoint, NodeId, SwitchId};
use san_fabric::packet::{Packet, PacketKind};
use san_fabric::route::Route;
use san_fabric::topology::{self, Topology};
use san_fabric::TransientFaults;
use san_sim::{Duration, Sim, Time};

type TSim = Sim<FabricEvent>;

fn drain(engine: &mut Engine, sim: &mut TSim) -> Vec<(Time, FabricOut)> {
    let mut outs = Vec::new();
    while let Some((t, ev)) = sim.pop() {
        let mut o = Vec::new();
        engine.handle(sim, ev, &mut o);
        outs.extend(o.into_iter().map(|x| (t, x)));
    }
    outs
}

fn raw_packet(src: NodeId, dst: NodeId, route: Route, len: u32) -> Packet {
    let mut p = Packet::new(src, dst, PacketKind::Raw).with_logical_len(len);
    p.route = route;
    p
}

#[test]
fn small_packet_delivery_timing() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let pkt = raw_packet(a, b, Route::from_ports(&[1]), 4);
    let mut o = Vec::new();
    engine.inject(&mut sim, pkt, &mut o);
    assert!(o.is_empty());
    let outs = drain(&mut engine, &mut sim);
    let (t_del, out) = &outs[0];
    match out {
        FabricOut::Delivered { node, pkt } => {
            assert_eq!(*node, b);
            // Two channel hops at 300 ns each dominate the tiny payload.
            assert_eq!(*t_del, Time::from_nanos(600));
            // Reverse route: host a sits on switch port 0.
            assert_eq!(pkt.reverse_route.ports(), &[0]);
        }
        other => panic!("expected delivery, got {other:?}"),
    }
    assert_eq!(engine.stats().delivered, 1);
    assert_eq!(engine.in_flight(), 0);
}

#[test]
fn large_packet_pays_serialization() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let pkt = raw_packet(a, b, Route::from_ports(&[1]), 4096);
    let wire = pkt.wire_bytes() as u64;
    let mut o = Vec::new();
    engine.inject(&mut sim, pkt, &mut o);
    let outs = drain(&mut engine, &mut sim);
    let expect = Duration::for_bytes(wire, 160_000_000);
    match &outs[0] {
        (t_del, FabricOut::Delivered { .. }) => {
            assert_eq!(
                *t_del,
                Time::ZERO + expect,
                "tail arrival = serialization time"
            );
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn contention_serializes_on_shared_channel() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    for i in 0..3 {
        let mut pkt = raw_packet(a, b, Route::from_ports(&[1]), 4096);
        pkt.msg_id = i;
        engine.inject(&mut sim, pkt, &mut o);
    }
    let outs = drain(&mut engine, &mut sim);
    let deliveries: Vec<(Time, u64)> = outs
        .iter()
        .filter_map(|(t, o)| match o {
            FabricOut::Delivered { pkt, .. } => Some((*t, pkt.msg_id)),
            _ => None,
        })
        .collect();
    assert_eq!(deliveries.len(), 3);
    // In injection order...
    assert_eq!(
        deliveries.iter().map(|d| d.1).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    // ...and spaced by at least a serialization time each (they share the
    // source's outgoing channel).
    let ser = Duration::for_bytes(4096, 160_000_000);
    assert!(deliveries[1].0.since(deliveries[0].0) >= ser);
    assert!(deliveries[2].0.since(deliveries[1].0) >= ser);
}

#[test]
fn wire_loss_drops_silently() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    engine.set_transient_faults(TransientFaults::loss(1.0), 7);
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 64),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(outs.iter().any(|(_, o)| matches!(
        o,
        FabricOut::Dropped {
            reason: DropReason::WireLoss,
            ..
        }
    )));
    assert_eq!(engine.stats().delivered, 0);
    assert_eq!(engine.stats().dropped_total(), 1);
}

#[test]
fn wire_corruption_fails_crc_at_receiver() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    engine.set_transient_faults(TransientFaults::corruption(1.0), 7);
    let mut sim = TSim::new(1);
    let mut pkt = raw_packet(a, b, Route::from_ports(&[1]), 0);
    pkt.seal();
    assert!(pkt.crc_ok());
    let mut o = Vec::new();
    engine.inject(&mut sim, pkt, &mut o);
    let outs = drain(&mut engine, &mut sim);
    match &outs[0].1 {
        FabricOut::Delivered { pkt, .. } => assert!(!pkt.crc_ok(), "corruption must fail CRC"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unwired_port_drops_invalid_route() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[6]), 16),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(matches!(
        outs[0].1,
        FabricOut::Dropped {
            reason: DropReason::InvalidRoute,
            ..
        }
    ));
}

#[test]
fn route_exhausted_at_switch_is_absorbed() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(&mut sim, raw_packet(a, b, Route::empty(), 16), &mut o);
    let outs = drain(&mut engine, &mut sim);
    assert!(matches!(
        outs[0].1,
        FabricOut::Dropped {
            reason: DropReason::Absorbed,
            ..
        }
    ));
}

#[test]
fn route_past_host_is_invalid() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1, 0]), 16),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(matches!(
        outs[0].1,
        FabricOut::Dropped {
            reason: DropReason::InvalidRoute,
            ..
        }
    ));
}

#[test]
fn link_death_kills_in_flight_and_blocks_future() {
    let (t, a, b) = topology::pair_via_switch();
    let b_link = t.link_at(Endpoint::Host(b)).unwrap();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    // A long packet that will still be on the wire when the link dies.
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 1_000_000),
        &mut o,
    );
    sim.schedule(
        Time::from_micros(100),
        FabricEvent::LinkDown { link: b_link },
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(outs.iter().any(|(_, o)| matches!(
        o,
        FabricOut::Dropped {
            reason: DropReason::KilledByFault,
            ..
        }
    )));
    assert!(!engine.link_alive(b_link));
    // A new injection dies at acquisition of the dead channel.
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 64),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(outs.iter().any(|(_, o)| matches!(
        o,
        FabricOut::Dropped {
            reason: DropReason::DeadLink,
            ..
        }
    )));
}

#[test]
fn switch_death_stops_traffic() {
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.kill_switch(&mut sim, SwitchId(0), &mut o);
    assert!(!engine.switch_alive(SwitchId(0)));
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 64),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    // The host link channels died with the switch, so the drop happens
    // synchronously at injection (dead first channel).
    assert!(o
        .iter()
        .chain(outs.iter().map(|(_, o)| o))
        .any(|o| matches!(o, FabricOut::Dropped { .. })));
    assert_eq!(engine.stats().delivered, 0);
}

#[test]
fn link_revival_restores_traffic() {
    let (t, a, b) = topology::pair_via_switch();
    let b_link = t.link_at(Endpoint::Host(b)).unwrap();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.set_link_alive(&mut sim, b_link, false, &mut o);
    engine.set_link_alive(&mut sim, b_link, true, &mut o);
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 64),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(outs
        .iter()
        .any(|(_, o)| matches!(o, FabricOut::Delivered { .. })));
}

/// Three hosts on a 3-switch ring all routing "the long way" produce a
/// genuine channel-dependency deadlock; the path-reset timer must fire and
/// kill all three flights, reporting resets to the senders.
#[test]
fn ring_deadlock_recovers_via_path_reset() {
    let mut t = Topology::new();
    let hs: Vec<NodeId> = (0..3).map(|_| t.add_host()).collect();
    let ss: Vec<SwitchId> = (0..3).map(|_| t.add_switch(4)).collect();
    for i in 0..3 {
        t.connect_host(hs[i], ss[i], 0);
        t.connect_switches(ss[i], 1, ss[(i + 1) % 3], 2);
    }
    let cfg = EngineConfig {
        path_reset_timeout: Duration::from_millis(1),
        ..Default::default()
    };
    let mut engine = Engine::new(t, cfg);
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    for i in 0..3 {
        // Big enough that the worm still occupies its first inter-switch
        // channel when it blocks on the next one.
        let dst = hs[(i + 2) % 3];
        engine.inject(
            &mut sim,
            raw_packet(hs[i], dst, Route::from_ports(&[1, 1, 0]), 65536),
            &mut o,
        );
    }
    let outs = drain(&mut engine, &mut sim);
    let resets: Vec<&FabricOut> = outs
        .iter()
        .map(|(_, o)| o)
        .filter(|o| matches!(o, FabricOut::PathReset { .. }))
        .collect();
    assert_eq!(
        resets.len(),
        3,
        "all three flights deadlock and reset: {outs:?}"
    );
    assert_eq!(engine.stats().path_resets, 3);
    assert_eq!(engine.in_flight(), 0);
    // After recovery the channels are free again: a fresh minimal-route
    // packet goes through.
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(hs[0], hs[1], Route::from_ports(&[1, 0]), 64),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    assert!(outs
        .iter()
        .any(|(_, o)| matches!(o, FabricOut::Delivered { .. })));
}

#[test]
fn reverse_route_traces_back_in_chain() {
    let (t, a, b) = topology::chain(3);
    let fwd = t.shortest_route(a, b, |_| true).unwrap();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(&mut sim, raw_packet(a, b, fwd, 64), &mut o);
    let outs = drain(&mut engine, &mut sim);
    let rev = match &outs[0].1 {
        FabricOut::Delivered { pkt, .. } => pkt.reverse_route,
        other => panic!("{other:?}"),
    };
    // The reverse route must reach `a` when traced from `b`.
    assert_eq!(
        engine.topology().trace_route(b, &rev, |_| true),
        Some(Endpoint::Host(a))
    );
    // And actually deliver when injected.
    let mut o = Vec::new();
    engine.inject(&mut sim, raw_packet(b, a, rev, 64), &mut o);
    let outs = drain(&mut engine, &mut sim);
    assert!(matches!(&outs[0].1, FabricOut::Delivered { node, .. } if *node == a));
}

#[test]
fn full_duplex_channels_do_not_collide() {
    // Simultaneous opposite-direction traffic on the same link must not
    // contend: channels are directional.
    let (t, a, b) = topology::pair_via_switch();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 4096),
        &mut o,
    );
    engine.inject(
        &mut sim,
        raw_packet(b, a, Route::from_ports(&[0]), 4096),
        &mut o,
    );
    let outs = drain(&mut engine, &mut sim);
    let times: Vec<Time> = outs
        .iter()
        .filter_map(|(t, o)| matches!(o, FabricOut::Delivered { .. }).then_some(*t))
        .collect();
    assert_eq!(times.len(), 2);
    assert_eq!(
        times[0], times[1],
        "full duplex: both directions proceed in parallel"
    );
}

#[test]
fn waiting_flight_killed_by_fault_is_removed_from_queue() {
    // Flight 1 occupies the switch->b channel; flight 2 waits on it; the a
    // side link then dies killing flight 2 (it holds a->switch). Flight 1
    // must still deliver and the wait queue must not dangle.
    let mut t = Topology::new();
    let a = t.add_host();
    let b = t.add_host();
    let c = t.add_host();
    let s = t.add_switch(4);
    t.connect_host(a, s, 0);
    t.connect_host(b, s, 1);
    t.connect_host(c, s, 2);
    let a_link = t.link_at(Endpoint::Host(a)).unwrap();
    let mut engine = Engine::new(t, EngineConfig::default());
    let mut sim = TSim::new(1);
    let mut o = Vec::new();
    // c -> b big packet grabs the s->b channel.
    engine.inject(
        &mut sim,
        raw_packet(c, b, Route::from_ports(&[1]), 1_000_000),
        &mut o,
    );
    // a -> b will wait behind it.
    engine.inject(
        &mut sim,
        raw_packet(a, b, Route::from_ports(&[1]), 4096),
        &mut o,
    );
    // Kill a's link while a->b is waiting.
    sim.schedule(
        Time::from_micros(50),
        FabricEvent::LinkDown { link: a_link },
    );
    let outs = drain(&mut engine, &mut sim);
    let delivered: Vec<NodeId> = outs
        .iter()
        .filter_map(|(_, o)| match o {
            FabricOut::Delivered { pkt, .. } => Some(pkt.src),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![c], "only the c->b packet survives");
    assert!(outs.iter().any(|(_, o)| matches!(
        o,
        FabricOut::Dropped {
            reason: DropReason::KilledByFault,
            ..
        }
    )));
    assert_eq!(engine.in_flight(), 0);
}

/// Bursty loss produces clustered drops with the configured average rate:
/// the same mean as independent loss, but far fewer distinct loss episodes.
#[test]
fn bursty_losses_cluster() {
    use san_fabric::fault::TransientFaults;
    let run = |faults: TransientFaults| -> Vec<bool> {
        let (t, a, b) = topology::pair_via_switch();
        let mut engine = Engine::new(t, EngineConfig::default());
        engine.set_transient_faults(faults, 42);
        let mut sim = TSim::new(1);
        let mut lost = Vec::new();
        for i in 0..4000u64 {
            let mut o = Vec::new();
            let mut pkt = raw_packet(a, b, Route::from_ports(&[1]), 16);
            pkt.msg_id = i;
            engine.inject(&mut sim, pkt, &mut o);
            let outs = drain(&mut engine, &mut sim);
            let dropped = outs
                .iter()
                .map(|(_, w)| w)
                .chain(o.iter())
                .any(|w| matches!(w, FabricOut::Dropped { .. }));
            lost.push(dropped);
        }
        lost
    };
    let independent = run(TransientFaults::loss(0.02));
    let bursty = run(TransientFaults::bursty_loss(0.02, 8.0));
    let rate = |l: &[bool]| l.iter().filter(|&&x| x).count() as f64 / l.len() as f64;
    // Comparable average rates...
    assert!(
        (rate(&independent) - 0.02).abs() < 0.01,
        "{}",
        rate(&independent)
    );
    assert!((rate(&bursty) - 0.02).abs() < 0.015, "{}", rate(&bursty));
    // ...but far fewer distinct episodes in the bursty channel.
    let episodes = |l: &[bool]| l.windows(2).filter(|w| !w[0] && w[1]).count();
    assert!(
        episodes(&bursty) * 3 < episodes(&independent),
        "bursts cluster: {} vs {} episodes",
        episodes(&bursty),
        episodes(&independent)
    );
}
