//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches parking_lot's API shape for the surface the workspace uses:
//! `lock()` returns the guard directly (no `Result`), and a panicked
//! holder does not poison the lock for later users.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Borrow the value mutably without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning, like `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_excludes() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
