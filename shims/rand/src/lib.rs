//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::SmallRng`] (the same xoshiro256++ generator rand 0.8 uses on
//! 64-bit targets, seeded through the same SplitMix64 expansion), the
//! [`Rng`] extension trait with `gen` / `gen_range`, and [`SeedableRng`]
//! with `seed_from_u64`. Distributions follow the rand 0.8 algorithms
//! (53-bit mantissa floats, widened-multiply integer ranges) so seeded
//! simulations keep the statistical properties the tests assert.

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`u64`/`u32`: full range; `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 random mantissa bits scaled
        // into [0, 1).
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Sample one element uniformly. Panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Widening 64x64 multiply: (high, low) halves of the 128-bit product.
#[inline]
fn wmul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Unbiased integer in `[0, span)` via the widened-multiply rejection
/// method rand 0.8 uses for `sample_single`. `span == 0` means the full
/// 64-bit range.
#[inline]
fn sample_span<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, u32, u16, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            // 52 random mantissa bits with exponent 0 give [1, 2); shift
            // and scale into [start, end) — rand 0.8's float algorithm.
            let frac = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | frac);
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The small, fast generator rand 0.8 ships on 64-bit targets:
    /// xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion, as rand_core::SeedableRng::seed_from_u64
            // does before handing 32 seed bytes to the generator.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro rejects the all-zero state; SplitMix64 cannot produce
            // four zero outputs in a row, but guard anyway.
            let s = if s == [0; 4] {
                [0x9E37_79B9, 1, 2, 3]
            } else {
                s
            };
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=3);
            assert!(y <= 3);
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(13);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 15.0, "mean {mean}");
    }
}
