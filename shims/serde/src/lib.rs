//! Offline stand-in for `serde`.
//!
//! The container image cannot reach crates.io, so this crate provides just
//! enough surface for the workspace to compile: `Serialize`/`Deserialize`
//! as marker traits with blanket impls, and the derive macros as no-ops.
//! Nothing in-tree performs serde-based (de)serialization — the telemetry
//! exporters emit JSON and CSV by hand — so the markers are sufficient.
//! If real serde interop is ever needed, vendor the genuine crates and
//! point `[workspace.dependencies]` back at them.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
