//! Offline stand-in for `crossbeam`, providing `crossbeam::thread::scope`
//! on top of `std::thread::scope` (stable since 1.63).
//!
//! Differences from the real crate are confined to failure handling: a
//! panicking child propagates the panic out of `scope` instead of being
//! collected into the `Err` variant. Every in-tree caller unwraps the
//! result, so the observable behaviour — join-all on success, loud failure
//! otherwise — is identical.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    /// Handle passed to [`scope`] closures; spawn children through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread that may borrow from the enclosing scope.
        /// The closure receives the scope again so children can spawn
        /// grandchildren, as with crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&Scope<'a, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Returns `Ok` with the closure's value (a child panic
    /// propagates as a panic rather than an `Err`, which every caller in
    /// this workspace turns into a test failure anyway).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_borrow_and_join() {
            let mut data = [0u64; 8];
            super::scope(|s| {
                for (i, slot) in data.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u64 * 2);
                }
            })
            .unwrap();
            assert_eq!(data[3], 6);
        }

        #[test]
        fn nested_spawn() {
            let out = super::scope(|s| {
                let h = s.spawn(|s2| {
                    let inner = s2.spawn(|_| 21u64);
                    inner.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(out, 42);
        }
    }
}
