//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! Provides [`Bytes`] (an immutable, cheaply cloneable byte buffer backed
//! by an `Arc`), [`BytesMut`] (a growable builder that freezes into
//! `Bytes`) and the [`BufMut`] write helpers the workspace uses. Semantics
//! match the real crate for the covered surface: `Bytes::clone` and
//! `Bytes::slice` are O(1) and share the underlying allocation.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Shared hex-ish Debug: short buffers in full, long ones abbreviated.
macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let s: &[u8] = self;
            if s.len() <= 16 {
                write!(f, "b\"")?;
                for b in s {
                    write!(f, "\\x{b:02x}")?;
                }
                write!(f, "\"")
            } else {
                write!(f, "Bytes[len={}]", s.len())
            }
        }
    };
}

/// Immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a `'static` slice without copying.
    pub fn from_static(s: &'static [u8]) -> Self {
        // The shim has no zero-copy static variant; static payloads in this
        // workspace are tiny test fixtures, so one copy is fine.
        Self::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds (len {})",
            self.len()
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Self::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// Growable byte builder; freeze into [`Bytes`] when done.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

/// Sequential write helpers (the `bytes::BufMut` subset the workspace uses).
pub trait BufMut {
    /// Append a raw slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` in big-endian order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
        assert_eq!(s2.to_vec(), vec![3]);
    }

    #[test]
    fn builder_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u32_le(0x01020304);
        let b = m.freeze();
        assert_eq!(&b[..], &[0xAB, 0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn clone_is_shared() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Arc::ptr_eq(&b.data, &c.data));
    }
}
