//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API surface the workspace uses
//! (`benchmark_group`, `throughput`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`) as a plain
//! wall-clock harness: each benchmark is calibrated to ~5 ms per sample,
//! then timed over `sample_size` samples, reporting min/mean/max time per
//! iteration plus derived throughput. No statistical outlier analysis or
//! HTML reports — numbers print to stdout, which is all the in-tree
//! benches consume.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour `cargo bench -- <substring>` filtering; ignore harness
        // flags like `--bench` that cargo forwards.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
    // Tie to the Criterion borrow like the real API does.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(flt) = &self.filter {
            if !full.contains(flt.as_str()) {
                return self;
            }
        }

        // Calibrate: grow the iteration count until one sample costs ~5 ms.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|x, y| x.total_cmp(y));
        let min = samples[0];
        let max = *samples.last().unwrap();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        per_iter = Duration::from_nanos(mean as u64);

        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  thrpt: {:.3} Melem/s",
                    n as f64 / per_iter.as_nanos().max(1) as f64 * 1e3
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:.1} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{full:<40} time: [{} {} {}]{thr}  ({} samples x {iters} iters)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            samples.len(),
        );
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundle benchmark functions into a named runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
