//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! `proptest!` macro, `prop_assert*`/`prop_assume!`, `any::<T>()`, integer
//! and float range strategies, `Just`, `prop_oneof!`, `prop_map`, and
//! `collection::vec` — on top of a small deterministic runner. Each test
//! function runs `ProptestConfig::cases` random cases seeded from the
//! test's module path, so failures are reproducible run-to-run. Shrinking
//! is not implemented: a failing case reports its assertion message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful random cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the seed suite fast while still
        // exploring enough of the space to catch regressions.
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vacuous (`prop_assume!` failed); it is retried, not counted.
    Reject(String),
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// SplitMix64 stream seeded from the test's path, so every run of a
    /// given test explores the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (module path + fn name).
        pub fn for_test(path: &str) -> Self {
            // FNV-1a over the path gives a stable per-test seed.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in path.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `[0, n)`; `n` must be nonzero. The modulo
        /// bias is irrelevant at test-case-generation quality.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values. Object-safe so `prop_oneof!` can box
/// heterogeneous arms.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from non-empty arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Box a strategy as a union arm (used by `prop_oneof!`).
pub fn union_arm<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::arbitrary::any` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy yielding `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element from `elem`, length uniform in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discard the current case (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::union_arm($arm)),+])
    };
}

/// The test-definition macro. Accepts an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in strategy,
/// ...) { body }` items (each carrying its own `#[test]` attribute, as the
/// real macro's callers conventionally write).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} passes)",
                    stringify!($name), attempts, passed
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 5u64..50, y in 0.25f64..0.75, v in crate::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        /// prop_oneof and prop_map compose.
        #[test]
        fn oneof_and_map(choice in prop_oneof![Just(None), (1u64..4).prop_map(Some)]) {
            match choice {
                None => {}
                Some(v) => prop_assert!((1..4).contains(&v)),
            }
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
