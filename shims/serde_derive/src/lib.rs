//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The workspace derives serde traits on config/report types for
//! downstream tooling, but nothing in-tree performs serde serialization
//! (exporters write JSON/CSV by hand). The shim's blanket trait impls
//! satisfy the bounds, so the derives only need to expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
