//! # san-repro — *Tolerating Network Failures in System Area Networks*
//!
//! A full Rust reproduction of Tang & Bilas (ICPP 2002): firmware-level
//! retransmission for transient network failures and on-demand network
//! mapping for permanent ones, evaluated on a calibrated discrete-event
//! model of the paper's Myrinet/VMMC testbed.
//!
//! This facade re-exports every layer; see the individual crates for the
//! real documentation:
//!
//! * [`sim`] — deterministic discrete-event kernel,
//! * [`fabric`] — the SAN fabric (topology, cut-through, faults, CRC),
//! * [`nic`] — the LANai-like NIC and the cluster world,
//! * [`ft`] — **the paper's contribution**: reliable firmware + mapper,
//! * [`vmmc`] — the user-level communication layer,
//! * [`proc`] — deterministic coroutines for application code,
//! * [`svm`] — the GeNIMA-like shared virtual memory,
//! * [`apps`] — SPLASH-2-style kernels (FFT, RadixLocal, WaterNSquared),
//! * [`microbench`] — latency/bandwidth drivers and parameter sweeps,
//! * [`telemetry`] — cross-layer metrics registry, trace ring and
//!   packet-lifecycle reconstruction,
//! * [`topo`] — large-scale topology atlas, structural validators and the
//!   multipath route planner + cache.
//!
//! ```
//! use san_repro::prelude::*;
//!
//! // Two nodes, one switch, reliable firmware, 1-in-50 injected loss.
//! let (topo, _, _) = san_repro::fabric::topology::pair_via_switch();
//! let inbox = san_repro::nic::testkit::inbox();
//! let hosts: Vec<Box<dyn HostAgent>> = vec![
//!     Box::new(StreamSender::new(NodeId(1), 512, 40)),
//!     Box::new(Collector(inbox.clone())),
//! ];
//! let proto = ProtocolConfig::default().with_error_rate(1.0 / 50.0);
//! let mut cluster = Cluster::new(
//!     topo,
//!     ClusterConfig::default(),
//!     |_| Box::new(ReliableFirmware::new(proto.clone(), MapperConfig::default(), 2)),
//!     hosts,
//! );
//! cluster.install_shortest_routes();
//! cluster.run_until(Time::from_millis(100));
//! assert_eq!(inbox.borrow().len(), 40); // exactly once, in order
//! ```

pub use san_apps as apps;
pub use san_fabric as fabric;
pub use san_ft as ft;
pub use san_microbench as microbench;
pub use san_nic as nic;
pub use san_proc as proc;
pub use san_sim as sim;
pub use san_svm as svm;
pub use san_telemetry as telemetry;
pub use san_topo as topo;
pub use san_vmmc as vmmc;

/// The names almost every user needs.
pub mod prelude {
    pub use san_fabric::{NodeId, Packet, Route, Topology};
    pub use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
    pub use san_nic::testkit::{Collector, StreamSender};
    pub use san_nic::{Cluster, ClusterConfig, HostAgent, HostCtx, SendDesc, UnreliableFirmware};
    pub use san_sim::{Duration, Time};
    pub use san_telemetry::{Telemetry, TraceFilter};
    pub use san_vmmc::VmmcLib;
}
