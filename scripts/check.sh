#!/usr/bin/env bash
# Full local gate: formatting, lints, the whole test suite.
# Everything runs offline — external deps resolve to the stand-ins under
# shims/ (see README "Building offline").
#
# `scripts/check.sh --workload` runs only the workload smoke gate (the
# tiny multi-tenant incast sanity check); the default runs everything.
set -euo pipefail
cd "$(dirname "$0")/.."

workload_gate() {
    echo "== workload smoke (2-tenant incast delivery gate)"
    cargo run --release -q -p san-bench --bin tenants -- --smoke
    echo "== chaos incast campaign (workload-ledger oracle gate)"
    cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/incast.json --trials 3 --jobs 2
}

if [[ "${1:-}" == "--workload" ]]; then
    workload_gate
    echo "Workload gate passed."
    exit 0
fi

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== san-mc smoke (exhaustive 2-node model check + leak-knob canary)"
# tiny2/wrap2 must verify exhaustively (with liveness); leak2 must FAIL
# with a conservation counterexample — if the checker stops finding the
# re-introduced PR 2 leak, this gate trips.
cargo run --release -q -p san-mc -- check --smoke

echo "== engine smoke (scheduler throughput floor + shard determinism gate)"
cargo run --release -q -p san-bench --bin engine -- --smoke

echo "== scale_map smoke (atlas + planner-hint remap gate)"
cargo run --release -q -p san-bench --bin scale_map -- --smoke

echo "== topo smoke (planner-strategy equivalence + torus floor + cold-start gate)"
cargo run --release -q -p san-bench --bin topo -- --smoke

echo "== reconfig smoke (three-policy live-reconfiguration gate)"
cargo run --release -q -p san-bench --bin reconfig -- --smoke

echo "== chaos smoke campaign (invariant gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/smoke.json --trials 8 --jobs 2

echo "== chaos recovery campaign (end-to-end recovery gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/recovery.json --trials 4 --jobs 2

echo "== negative control (unprotected baseline MUST fail)"
# The oracle gate is only trustworthy if it can still prove a loss: the
# intentionally unprotected campaign has to violate completeness. A pass
# here means the invariant checker has gone blind.
if cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/unprotected.json --trials 2 --jobs 2 --no-shrink > /dev/null 2>&1; then
    echo "ERROR: unprotected baseline campaign passed — the oracle is not detecting losses" >&2
    exit 1
fi
echo "unprotected baseline failed as expected (oracle alive)"

echo "== chaos reconfig campaign (live re-cable under traffic gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/reconfig.json --trials 4 --jobs 2

echo "== negative control (undrained removal MUST lose traffic)"
# The drain protocol is only proven useful if skipping it demonstrably
# hurts: an unannounced switch de-rack with the reliability firmware off
# must leave messages undelivered. Requiring the missing_delivery
# violation (not just a nonzero exit) pins the loss to the removal.
undrained_out=$(cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/reconfig_undrained.json --trials 2 --jobs 2 --no-shrink 2>&1) && {
    echo "ERROR: undrained-removal campaign passed — planned removal is indistinguishable from a drained one" >&2
    exit 1
}
if ! grep -q "missing_delivery" <<< "$undrained_out"; then
    echo "ERROR: undrained-removal campaign failed without a missing_delivery violation" >&2
    echo "$undrained_out" >&2
    exit 1
fi
echo "undrained removal lost traffic as expected (drain protocol is load-bearing)"

workload_gate

echo "All checks passed."
