#!/usr/bin/env bash
# Full local gate: formatting, lints, the whole test suite.
# Everything runs offline — external deps resolve to the stand-ins under
# shims/ (see README "Building offline").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== chaos smoke campaign (invariant gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/smoke.json --trials 8 --jobs 2

echo "All checks passed."
