#!/usr/bin/env bash
# Full local gate: formatting, lints, the whole test suite.
# Everything runs offline — external deps resolve to the stand-ins under
# shims/ (see README "Building offline").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== scale_map smoke (atlas + planner-hint remap gate)"
cargo run --release -q -p san-bench --bin scale_map -- --smoke

echo "== chaos smoke campaign (invariant gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/smoke.json --trials 8 --jobs 2

echo "== chaos recovery campaign (end-to-end recovery gate)"
cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/recovery.json --trials 4 --jobs 2

echo "== negative control (unprotected baseline MUST fail)"
# The oracle gate is only trustworthy if it can still prove a loss: the
# intentionally unprotected campaign has to violate completeness. A pass
# here means the invariant checker has gone blind.
if cargo run --release -q -p san-chaos -- run crates/chaos/campaigns/unprotected.json --trials 2 --jobs 2 --no-shrink > /dev/null 2>&1; then
    echo "ERROR: unprotected baseline campaign passed — the oracle is not detecting losses" >&2
    exit 1
fi
echo "unprotected baseline failed as expected (oracle alive)"

echo "All checks passed."
