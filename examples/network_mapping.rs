//! On-demand network mapping from a cold start: a node with an *empty route
//! table* is asked to send to three destinations at different distances in
//! the paper's Figure 2 testbed. Watch the mapper probe its way out — host
//! probes, switch loop-probes, identity checks — caching side discoveries
//! as it goes.
//!
//! Run with: `cargo run --release --example network_mapping`

use san_fabric::topology;
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, make_desc, Collector};
use san_nic::{Cluster, ClusterConfig, HostAgent, HostCtx, IdleHost};
use san_sim::{Duration, Time};

/// Sends one message to each destination in turn, cold.
struct MultiSender {
    targets: Vec<san_fabric::NodeId>,
    sent: usize,
}

impl HostAgent for MultiSender {
    fn on_start(&mut self, ctx: &mut HostCtx) {
        ctx.wake_in(Duration::from_micros(2), 0);
    }
    fn on_wake(&mut self, ctx: &mut HostCtx, _token: u64) {
        if self.sent < self.targets.len() {
            ctx.post_send(make_desc(
                self.targets[self.sent],
                64,
                self.sent as u64,
                ctx.now(),
            ));
            self.sent += 1;
            // Wait generously between targets so each mapping run is
            // attributable in the output.
            ctx.wake_in(Duration::from_millis(40), 0);
        }
    }
    fn on_message(&mut self, _ctx: &mut HostCtx, _pkt: san_fabric::Packet) {}
    fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
}

fn main() {
    let tb = topology::paper_mapping_testbed(2);
    let n = tb.hosts.len();
    println!(
        "Figure 2 testbed: {} switches ({}+{} ports), {} hosts, {} links",
        tb.topo.num_switches(),
        16,
        8,
        n,
        tb.topo.num_links()
    );

    // Node 0 (on core switch 0) will map to: a same-switch neighbour, a
    // host on the other core switch, and a host on a leaf switch.
    let targets = vec![tb.hosts[4], tb.hosts[1], tb.hosts[2]];
    let ib = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = (0..n)
        .map(|h| -> Box<dyn HostAgent> {
            if h == 0 {
                Box::new(MultiSender {
                    targets: targets.clone(),
                    sent: 0,
                })
            } else if targets.iter().any(|t| t.idx() == h) {
                Box::new(Collector(ib.clone()))
            } else {
                Box::new(IdleHost)
            }
        })
        .collect();
    let proto = ProtocolConfig::default().with_mapping();
    let mut cluster = Cluster::new(
        tb.topo,
        ClusterConfig::default(),
        |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                n,
            ))
        },
        hosts,
    );
    // Note: no routes installed anywhere — everything is discovered.
    let mut shown = 0;
    let mut t = Time::from_millis(1);
    while shown < targets.len() && t < Time::from_secs(5) {
        cluster.run_until(t);
        let delivered = ib.borrow().len();
        if delivered > shown {
            let fw = cluster.nics[0]
                .fw
                .as_any()
                .downcast_ref::<ReliableFirmware>()
                .unwrap();
            let st = fw.mapper_stats();
            let dst = targets[shown];
            let route = cluster.nics[0].core.routes.get(dst).unwrap();
            println!(
                "mapped {dst}: route {route:?}  probes {}h/{}s  time {:.3} ms  (runs so far: {})",
                st.last_host_probes, st.last_switch_probes, st.last_time_ms, st.runs
            );
            shown = delivered;
        }
        t += Duration::from_millis(1);
    }
    assert_eq!(shown, targets.len(), "all three targets must be reached");
    let fw = cluster.nics[0]
        .fw
        .as_any()
        .downcast_ref::<ReliableFirmware>()
        .unwrap();
    println!(
        "\nroutes cached on node 0 after three sends: {} (side discoveries included)",
        cluster.nics[0].core.routes.known()
    );
    println!(
        "total probes: {} host + {} switch",
        fw.mapper_stats().host_probes,
        fw.mapper_stats().switch_probes
    );
}
