//! Cluster computing: run the three SPLASH-2-style kernels on the simulated
//! 4-node × 2-processor SVM cluster — once error-free and once with the
//! paper's 1e-3 injected error rate — and print the Figure 9 execution-time
//! breakdowns side by side.
//!
//! Run with: `cargo run --release --example cluster_compute`

use san_apps::{run_fft, run_radix, run_water, FftConfig, RadixConfig, WaterConfig};
use san_ft::ProtocolConfig;
use san_svm::{SvmConfig, TimeBreakdown};

fn breakdown(label: &str, bd: &TimeBreakdown, wall_ms: f64, valid: bool) {
    println!(
        "  {label:<12} compute {:>8.2}ms  data {:>7.2}ms  lock {:>7.2}ms  barrier {:>7.2}ms  wall {:>7.2}ms  valid={valid}",
        bd.compute.as_millis_f64(),
        bd.data.as_millis_f64(),
        bd.lock.as_millis_f64(),
        bd.barrier.as_millis_f64(),
        wall_ms,
    );
}

fn svm_with(err: f64) -> SvmConfig {
    SvmConfig {
        proto: Some(ProtocolConfig::default().with_error_rate(err)),
        ..SvmConfig::default()
    }
}

fn main() {
    for (label, err) in [("error-free", 0.0), ("err 1e-3", 1e-3)] {
        println!("--- {label} ---");
        let fft = run_fft(FftConfig {
            svm: svm_with(err),
            ..FftConfig::small()
        });
        breakdown(
            "FFT",
            &fft.report.aggregate(),
            fft.report.wall.as_millis_f64(),
            fft.valid,
        );
        assert!(fft.valid, "FFT output must match the sequential reference");

        let radix = run_radix(RadixConfig {
            svm: svm_with(err),
            ..RadixConfig::small()
        });
        breakdown(
            "RadixLocal",
            &radix.report.aggregate(),
            radix.report.wall.as_millis_f64(),
            radix.valid,
        );
        assert!(radix.valid, "radix output must be sorted");

        let water = run_water(WaterConfig {
            svm: svm_with(err),
            ..WaterConfig::small()
        });
        breakdown(
            "Water",
            &water.report.aggregate(),
            water.report.wall.as_millis_f64(),
            water.valid,
        );
        assert!(water.valid, "water must match the reference trajectory");
        println!();
    }
    println!("Injected network errors slowed the runs but changed no result —");
    println!("the reliability firmware is transparent to the applications.");
}
