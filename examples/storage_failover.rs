//! Storage-style failover: a client streams blocks to a storage server over
//! a redundant two-switch fabric; mid-stream, the link in use dies
//! permanently. The firmware detects the dead path, maps the network on
//! demand, finds the spare link, starts a new packet generation and the
//! stream completes — no application involvement whatsoever.
//!
//! (The paper motivates exactly this deployment: SANs moving into storage
//! systems with availability requirements, §1/§7.)
//!
//! Run with: `cargo run --release --example storage_failover`

use san_fabric::engine::FabricEvent;
use san_fabric::Topology;
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent};
use san_sim::{Duration, Time};

fn main() {
    // client — s0 ══ s1 — server, with two parallel inter-switch links.
    let mut topo = Topology::new();
    let client = topo.add_host();
    let server = topo.add_host();
    let s0 = topo.add_switch(8);
    let s1 = topo.add_switch(8);
    topo.connect_host(client, s0, 0);
    topo.connect_host(server, s1, 0);
    let primary = topo.connect_switches(s0, 1, s1, 1);
    let _spare = topo.connect_switches(s0, 2, s1, 2);

    let blocks = 600u64;
    let received = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(server, 4096, blocks)),
        Box::new(Collector(received.clone())),
    ];
    let proto = ProtocolConfig {
        perm_fail_threshold: Duration::from_millis(10),
        ..ProtocolConfig::default().with_mapping()
    };
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig::default(),
        |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                2,
            ))
        },
        hosts,
    );
    cluster.install_shortest_routes();

    // Pull the primary link at t = 3 ms, mid-stream.
    cluster.sim.schedule(
        Time::from_millis(3),
        FabricEvent::LinkDown { link: primary }.into(),
    );

    cluster.run_until(Time::from_secs(2));

    let inbox = received.borrow();
    let unique: std::collections::BTreeSet<u64> = inbox.iter().map(|p| p.msg_id).collect();
    let stats = &cluster.nics[0].core.stats;
    let fw = cluster.nics[0]
        .fw
        .as_any()
        .downcast_ref::<ReliableFirmware>()
        .unwrap();
    let map = fw.mapper_stats();
    println!(
        "blocks delivered     : {} unique / {blocks} sent",
        unique.len()
    );
    println!("path resets observed : {}", stats.path_resets);
    println!("mapping runs         : {}", map.runs);
    println!(
        "probes (host/switch) : {} / {}",
        map.last_host_probes, map.last_switch_probes
    );
    println!("re-mapping time      : {:.3} ms", map.last_time_ms);
    println!("retransmissions      : {}", stats.retransmits);
    assert_eq!(
        unique.len() as u64,
        blocks,
        "failover must deliver every block"
    );
    println!("\nThe stream survived a permanent link failure transparently.");
}
