//! Quickstart: build a two-node SAN, run the reliable firmware with an
//! aggressive injected error rate, and watch every message arrive exactly
//! once, in order.
//!
//! Run with: `cargo run --release --example quickstart`

use san_fabric::{topology, NodeId};
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent};
use san_sim::Time;
use san_telemetry::Telemetry;

fn main() {
    // 1. The paper's microbenchmark fabric: two hosts, one crossbar switch.
    let (topo, _a, _b) = topology::pair_via_switch();

    // 2. Host agents: a streaming sender and a collector.
    let received = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(NodeId(1), 1024, 500)),
        Box::new(Collector(received.clone())),
    ];

    // 3. The reliable firmware, dropping every 25th packet on the send side
    //    (the paper's §5.1.3 error injector — a brutal 4% loss rate).
    let proto = ProtocolConfig::default().with_error_rate(1.0 / 25.0);
    let telemetry = Telemetry::new();
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig {
            telemetry: telemetry.clone(),
            ..Default::default()
        },
        |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                2,
            ))
        },
        hosts,
    );
    cluster.install_shortest_routes();

    // 4. Run the simulation.
    cluster.run_until(Time::from_secs(1));

    // 5. Inspect.
    let inbox = received.borrow();
    let in_order = inbox.windows(2).all(|w| w[0].msg_id < w[1].msg_id);
    let s0 = &cluster.nics[0].core.stats;
    println!("messages delivered : {} / 500", inbox.len());
    println!("in order, no dups  : {in_order}");
    println!("packets dropped    : {} (injected)", s0.injected_drops);
    println!("retransmissions    : {}", s0.retransmits);
    println!(
        "explicit ACKs sent : {}",
        cluster.nics[1].core.stats.acks_tx
    );
    println!("virtual time       : {}", cluster.sim.now());
    assert_eq!(inbox.len(), 500);
    assert!(in_order);

    // 6. Every layer registered its counters into the shared telemetry
    //    handle; the end-of-run summary aggregates them across the cluster.
    println!("\n{}", telemetry.summary_text());
    println!("Every message survived a 4% packet-loss link. That is the paper's result.");
}
