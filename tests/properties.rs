//! Property-based integration tests: protocol guarantees under arbitrary
//! fault schedules and topologies.

use proptest::prelude::*;
use san_fabric::{topology, Endpoint, NodeId, PortId, Topology, TransientFaults};
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent};
use san_sim::{Duration, Time};

fn ft_cluster(
    topo: Topology,
    cfg: ClusterConfig,
    proto: ProtocolConfig,
    hosts: Vec<Box<dyn HostAgent>>,
) -> Cluster {
    let n = topo.num_hosts();
    let mut c = Cluster::new(
        topo,
        cfg,
        move |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                n,
            ))
        },
        hosts,
    );
    c.install_shortest_routes();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once in-order delivery holds for any combination of loss
    /// probability, corruption probability, injected-drop interval, queue
    /// size and message size.
    #[test]
    fn delivery_guarantee_under_arbitrary_faults(
        loss in 0.0f64..0.06,
        corrupt in 0.0f64..0.06,
        drop_every in prop_oneof![Just(None), (5u64..50).prop_map(Some)],
        queue in prop_oneof![Just(2u16), Just(8), Just(32)],
        bytes in prop_oneof![Just(64u32), Just(1024), Just(4096)],
        seed in any::<u64>(),
    ) {
        let (topo, _a, _b) = topology::pair_via_switch();
        let ib = inbox();
        let n = 80u64;
        let hosts: Vec<Box<dyn HostAgent>> = vec![
            Box::new(StreamSender::new(NodeId(1), bytes, n)),
            Box::new(Collector(ib.clone())),
        ];
        let proto = ProtocolConfig { drop_interval: drop_every, ..Default::default() };
        let cfg = ClusterConfig { send_bufs: queue, ..Default::default() };
        let mut c = ft_cluster(topo, cfg, proto, hosts);
        c.engine.set_transient_faults(
            TransientFaults { loss_prob: loss, corrupt_prob: corrupt, burst: None },
            seed,
        );
        let mut t = Time::from_millis(50);
        while (ib.borrow().len() as u64) < n && t < Time::from_secs(20) {
            c.run_until(t);
            t += Duration::from_millis(50);
        }
        let ids: Vec<u64> = ib.borrow().iter().map(|p| p.msg_id).collect();
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }

    /// On any random connected topology, cold-start on-demand mapping finds
    /// a working route between any two hosts and traffic flows.
    #[test]
    fn mapper_finds_route_on_any_connected_topology(
        seed in any::<u64>(),
        n_switch in 1usize..5,
        extra_links in 0usize..3,
    ) {
        let mut rng = san_sim::SimRng::seed_from(seed);
        let mut topo = Topology::new();
        let switches: Vec<_> = (0..n_switch).map(|_| topo.add_switch(8)).collect();
        // Random spanning tree over switches.
        for i in 1..n_switch {
            let j = rng.below(i as u64) as usize;
            let pa = (0..8).find(|&p| topo.link_at(Endpoint::Switch(switches[i], PortId(p))).is_none()).unwrap();
            let pb = (0..8).find(|&p| topo.link_at(Endpoint::Switch(switches[j], PortId(p))).is_none()).unwrap();
            topo.connect_switches(switches[i], pa, switches[j], pb);
        }
        for _ in 0..extra_links {
            let i = rng.below(n_switch as u64) as usize;
            let j = rng.below(n_switch as u64) as usize;
            if i == j { continue; }
            let pa = (0..8).find(|&p| topo.link_at(Endpoint::Switch(switches[i], PortId(p))).is_none());
            let pb = (0..8).find(|&p| topo.link_at(Endpoint::Switch(switches[j], PortId(p))).is_none());
            if let (Some(pa), Some(pb)) = (pa, pb) {
                topo.connect_switches(switches[i], pa, switches[j], pb);
            }
        }
        // Two hosts on random switches (if ports allow).
        let a = topo.add_host();
        let b = topo.add_host();
        let sa = switches[rng.below(n_switch as u64) as usize];
        let sb = switches[rng.below(n_switch as u64) as usize];
        let pa = (0..8).find(|&p| topo.link_at(Endpoint::Switch(sa, PortId(p))).is_none());
        prop_assume!(pa.is_some());
        topo.connect_host(a, sa, pa.unwrap());
        // pb is searched only after a is wired, so sa == sb cannot collide.
        let pb = (0..8).find(|&p| topo.link_at(Endpoint::Switch(sb, PortId(p))).is_none());
        prop_assume!(pb.is_some());
        topo.connect_host(b, sb, pb.unwrap());
        prop_assume!(topo.shortest_route(a, b, |_| true).is_some());
        // Route length must fit the probing depth.
        prop_assume!(topo.shortest_route(a, b, |_| true).unwrap().len() <= 6);

        let ib = inbox();
        let hosts: Vec<Box<dyn HostAgent>> = vec![
            Box::new(StreamSender::new(b, 64, 3)),
            Box::new(Collector(ib.clone())),
        ];
        let proto = ProtocolConfig::default().with_mapping();
        let nn = topo.num_hosts();
        let mut c = Cluster::new(
            topo,
            ClusterConfig::default(),
            move |_| Box::new(ReliableFirmware::new(proto.clone(), MapperConfig::default(), nn)),
            hosts,
        );
        // Cold start: no routes installed.
        let mut t = Time::from_millis(20);
        while ib.borrow().len() < 3 && t < Time::from_secs(10) {
            c.run_until(t);
            t += Duration::from_millis(20);
        }
        prop_assert_eq!(ib.borrow().len(), 3, "mapping must deliver the messages");
    }

    /// The ablated variants (per-packet timers; selective retransmission)
    /// preserve the delivery guarantee — they only change costs.
    #[test]
    fn ablations_preserve_correctness(
        per_packet in any::<bool>(),
        selective in any::<bool>(),
        drop_every in 5u64..40,
    ) {
        let (topo, _a, _b) = topology::pair_via_switch();
        let ib = inbox();
        let n = 60u64;
        let hosts: Vec<Box<dyn HostAgent>> = vec![
            Box::new(StreamSender::new(NodeId(1), 1024, n)),
            Box::new(Collector(ib.clone())),
        ];
        let proto = ProtocolConfig {
            drop_interval: Some(drop_every),
            per_packet_timers: per_packet,
            selective_retransmission: selective,
            ..Default::default()
        };
        let mut c = ft_cluster(topo, ClusterConfig::default(), proto, hosts);
        let mut t = Time::from_millis(50);
        while (ib.borrow().len() as u64) < n && t < Time::from_secs(20) {
            c.run_until(t);
            t += Duration::from_millis(50);
        }
        let ids: Vec<u64> = ib.borrow().iter().map(|p| p.msg_id).collect();
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
    }
}
