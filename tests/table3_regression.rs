//! Regression pins for Table 3: on-demand mapping cost on the paper's
//! small fabrics must not drift as the mapper evolves.
//!
//! Everything pinned here is virtual-time deterministic — probe counts
//! and mapping times come out of the discrete-event clock, not the wall
//! clock — so exact equality is safe. If a mapper change legitimately
//! shifts these numbers, re-measure with
//! `cargo run --release -p san-bench --bin table3` and update the pins
//! alongside EXPERIMENTS.md.

use san_fabric::engine::FabricEvent;
use san_fabric::topology;
use san_ft::{MapStats, MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent, IdleHost};
use san_sim::{Duration, Time};

fn mapper_stats(cluster: &Cluster, node: usize) -> MapStats {
    cluster.nics[node]
        .fw
        .as_any()
        .downcast_ref::<ReliableFirmware>()
        .expect("reliable firmware")
        .mapper_stats()
        .clone()
}

/// Table 3 (A): cold-start mapping over a switch chain, exactly as the
/// `table3` bench runs it. Returns (host probes, switch probes, virtual
/// mapping time in ms) for the sender's completed run.
fn chain_cold_start(hops: usize) -> (u64, u64, f64) {
    let (topo, _a, b) = topology::chain(hops);
    let ib = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(b, 64, 1)),
        Box::new(Collector(ib.clone())),
    ];
    let proto = ProtocolConfig::default().with_mapping();
    let mut cluster = Cluster::new(
        topo,
        ClusterConfig::default(),
        |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                2,
            ))
        },
        hosts,
    );
    // No routes installed: the first send must map.
    let mut t = Time::from_millis(5);
    while ib.borrow().is_empty() && t < Time::from_secs(5) {
        cluster.run_until(t);
        t += Duration::from_millis(5);
    }
    assert_eq!(ib.borrow().len(), 1, "hop {hops}: message must arrive");
    let st = mapper_stats(&cluster, 0);
    (st.last_host_probes, st.last_switch_probes, st.last_time_ms)
}

#[test]
fn table3a_chain_probe_counts_are_pinned() {
    // (hops, host probes, switch probes) as measured for the seed mapper
    // (16-port probe budget, one identity check per switch). Host probes
    // grow by exactly one 16-port scan per hop; switch probes grow with
    // the explored switch neighbourhood, matching the paper's "linear in
    // the network explored" shape.
    let pins = [(1, 16, 0), (2, 32, 16), (3, 48, 272), (4, 64, 513)];
    let mut last_time = 0.0;
    for (hops, host_probes, switch_probes) in pins {
        let (h, s, ms) = chain_cold_start(hops);
        assert_eq!(
            (h, s),
            (host_probes, switch_probes),
            "hop {hops}: probe counts drifted (got {h} host / {s} switch)"
        );
        assert!(
            ms > last_time,
            "hop {hops}: mapping time must grow with distance ({ms} ms after {last_time} ms)"
        );
        last_time = ms;
    }
    // The paper's testbed spans 3.1–83.6 ms over the same sweep; the
    // simulated mapper must stay in the same order of magnitude.
    assert!(
        (0.1..100.0).contains(&last_time),
        "4-hop mapping time left the paper's regime: {last_time} ms"
    );
}

#[test]
fn table3b_failover_remap_is_pinned() {
    // Table 3 (B): both redundant core-to-core links die mid-stream on
    // the Figure 2 testbed; the sender re-maps on demand and finds the
    // leaf-switch detour.
    let tb = topology::paper_mapping_testbed(2);
    let n_hosts = tb.hosts.len();
    let (src, dst) = (tb.hosts[0], tb.hosts[1]);
    let ib = inbox();
    let mut hosts: Vec<Box<dyn HostAgent>> = Vec::new();
    for h in 0..n_hosts {
        if h == src.idx() {
            hosts.push(Box::new(StreamSender::new(dst, 2048, 400)));
        } else if h == dst.idx() {
            hosts.push(Box::new(Collector(ib.clone())));
        } else {
            hosts.push(Box::new(IdleHost));
        }
    }
    let proto = ProtocolConfig {
        perm_fail_threshold: Duration::from_millis(10),
        ..ProtocolConfig::default().with_mapping()
    };
    let mut cluster = Cluster::new(
        tb.topo,
        ClusterConfig::default(),
        |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                n_hosts,
            ))
        },
        hosts,
    );
    cluster.install_shortest_routes();
    let kill_at = Time::from_millis(2);
    for i in 0..2 {
        cluster.sim.schedule(
            kill_at,
            FabricEvent::LinkDown {
                link: tb.redundant_links[i],
            }
            .into(),
        );
    }
    let mut t = Time::from_millis(5);
    while ib.borrow().len() < 400 && t < Time::from_secs(10) {
        cluster.run_until(t);
        t += Duration::from_millis(5);
    }
    assert!(
        ib.borrow().len() >= 400,
        "failover must complete the stream (got {})",
        ib.borrow().len()
    );
    let st = mapper_stats(&cluster, src.idx());
    assert_eq!(st.runs.get(), 1, "exactly one re-mapping run");
    assert_eq!(
        (st.last_host_probes, st.last_switch_probes),
        (64, 304),
        "failover probe counts drifted (got {} host / {} switch)",
        st.last_host_probes,
        st.last_switch_probes
    );
    assert!(
        (1.0..30.0).contains(&st.last_time_ms),
        "re-mapping time left Table 3's regime: {} ms",
        st.last_time_ms
    );
}
