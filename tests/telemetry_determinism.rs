//! Telemetry integration tests: the trace stream is a deterministic
//! function of the configuration, and the metrics registry agrees with the
//! trace ring event-for-event.

use proptest::prelude::*;
use san_fabric::{topology, NodeId, TransientFaults};
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent};
use san_sim::Time;
use san_telemetry::{Layer, Telemetry, TraceKind};

/// One traced, fault-injected stream run; returns its telemetry handle.
fn traced_run(
    loss: f64,
    drop_every: Option<u64>,
    queue: u16,
    bytes: u32,
    count: u64,
    seed: u64,
    trace_cap: usize,
) -> Telemetry {
    let tel = Telemetry::with_trace(trace_cap);
    let (topo, _a, _b) = topology::pair_via_switch();
    let ib = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(NodeId(1), bytes, count)),
        Box::new(Collector(ib.clone())),
    ];
    let proto = ProtocolConfig {
        drop_interval: drop_every,
        ..Default::default()
    };
    let cfg = ClusterConfig {
        send_bufs: queue,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut c = Cluster::new(
        topo,
        cfg,
        move |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                2,
            ))
        },
        hosts,
    );
    c.install_shortest_routes();
    c.engine.set_transient_faults(
        TransientFaults {
            loss_prob: loss,
            corrupt_prob: 0.0,
            burst: None,
        },
        seed,
    );
    c.run_until(Time::from_secs(5));
    assert_eq!(ib.borrow().len() as u64, count, "stream must complete");
    tel
}

/// Two runs of the same seeded configuration must produce byte-identical
/// trace streams — the recorder never perturbs or reorders the simulation.
#[test]
fn identical_seeds_give_identical_trace_streams() {
    let run = || traced_run(0.02, Some(9), 8, 1024, 60, 0xDECAF, 1 << 15);
    let (a, b) = (run(), run());
    assert_eq!(a.overwritten_events(), 0, "ring must hold the full trace");
    let la: Vec<String> = a.events().iter().map(|e| e.to_line()).collect();
    let lb: Vec<String> = b.events().iter().map(|e| e.to_line()).collect();
    assert!(!la.is_empty());
    assert_eq!(la, lb, "trace streams diverged between identical runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any loss schedule, every registered counter that has a trace
    /// event recorded at the same site reports exactly the number of those
    /// events: the two observability planes cannot drift apart.
    #[test]
    fn counters_match_trace_event_counts(
        loss in 0.0f64..0.05,
        drop_every in prop_oneof![Just(None), (5u64..40).prop_map(Some)],
        queue in prop_oneof![Just(4u16), Just(32)],
        seed in any::<u64>(),
    ) {
        let tel = traced_run(loss, drop_every, queue, 2048, 50, seed, 1 << 16);
        prop_assert_eq!(tel.overwritten_events(), 0, "ring too small for the run");
        let events = tel.events();
        let snap = tel.snapshot();
        let count = |layer: Layer, kind: TraceKind| -> u64 {
            events.iter().filter(|e| e.layer == layer && e.kind == kind).count() as u64
        };

        // Fabric: injection, delivery and every drop reason trace 1:1.
        prop_assert_eq!(
            snap.counter("fabric.injected").unwrap(),
            count(Layer::Fabric, TraceKind::PacketInjected)
        );
        prop_assert_eq!(
            snap.counter("fabric.delivered").unwrap(),
            count(Layer::Fabric, TraceKind::PacketDelivered)
        );
        prop_assert_eq!(
            snap.counter_sum("fabric.dropped."),
            count(Layer::Fabric, TraceKind::PacketDropped)
        );

        // FT firmware: retransmissions and injector suppressions trace 1:1.
        prop_assert_eq!(
            snap.counter_sum("ft.node.0.retransmits") + snap.counter_sum("ft.node.1.retransmits"),
            count(Layer::Ft, TraceKind::Retransmit)
        );
        prop_assert_eq!(
            snap.counter_sum("ft.node.0.injected_drops")
                + snap.counter_sum("ft.node.1.injected_drops"),
            count(Layer::Ft, TraceKind::PacketDropped)
        );
    }
}
