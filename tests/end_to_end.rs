//! Cross-crate integration tests: the whole stack — fabric, NIC, reliable
//! firmware, VMMC, mapper — exercised together.

use san_fabric::engine::FabricEvent;
use san_fabric::{topology, NodeId, Topology, TransientFaults};
use san_ft::{MapperConfig, ProtocolConfig, ReliableFirmware};
use san_nic::testkit::{inbox, Collector, StreamSender};
use san_nic::{Cluster, ClusterConfig, HostAgent, UnreliableFirmware};
use san_sim::{Duration, Time};

fn ft_cluster(
    topo: Topology,
    cfg: ClusterConfig,
    proto: ProtocolConfig,
    hosts: Vec<Box<dyn HostAgent>>,
) -> Cluster {
    let n = topo.num_hosts();
    let mut c = Cluster::new(
        topo,
        cfg,
        move |_| {
            Box::new(ReliableFirmware::new(
                proto.clone(),
                MapperConfig::default(),
                n,
            ))
        },
        hosts,
    );
    c.install_shortest_routes();
    c
}

/// The unreliable baseline genuinely loses data under wire faults — the
/// negative control that proves the reliability layer is doing the work.
#[test]
fn unreliable_firmware_loses_messages_under_loss() {
    let (topo, _a, _b) = topology::pair_via_switch();
    let ib = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(NodeId(1), 1024, 200)),
        Box::new(Collector(ib.clone())),
    ];
    let mut c = Cluster::new(
        topo,
        ClusterConfig::default(),
        |_| Box::new(UnreliableFirmware),
        hosts,
    );
    c.install_shortest_routes();
    c.engine
        .set_transient_faults(TransientFaults::loss(0.05), 7);
    c.run_until(Time::from_millis(100));
    let got = ib.borrow().len();
    assert!(
        got < 200,
        "without FT, 5% loss must lose messages (got {got}/200)"
    );
    assert!(got > 100, "but most still arrive");
}

/// Same seed, same everything → bit-identical statistics.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let (topo, _a, _b) = topology::pair_via_switch();
        let ib = inbox();
        let hosts: Vec<Box<dyn HostAgent>> = vec![
            Box::new(StreamSender::new(NodeId(1), 2048, 150)),
            Box::new(Collector(ib.clone())),
        ];
        let proto = ProtocolConfig::default().with_error_rate(1.0 / 30.0);
        let mut c = ft_cluster(topo, ClusterConfig::default(), proto, hosts);
        c.engine
            .set_transient_faults(TransientFaults::loss(0.01), 99);
        c.run_until(Time::from_millis(500));
        let s = &c.nics[0].core.stats;
        let fingerprint = (
            ib.borrow().len(),
            s.retransmits.get(),
            s.acks_rx.get(),
            c.engine.stats().delivered,
            c.events_processed(),
            ib.borrow()
                .iter()
                .map(|p| p.stamps.host_seen.nanos())
                .sum::<u64>(),
        );
        fingerprint
    };
    assert_eq!(run(), run(), "identical seeds must give identical runs");
}

/// Reliable delivery across a three-switch path with loss *and* corruption
/// on the wire plus send-side injected drops — all three fault mechanisms
/// at once.
#[test]
fn triple_fault_gauntlet() {
    let (topo, a, b) = topology::chain(3);
    let ib = inbox();
    let n = 120u64;
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(StreamSender::new(b, 1024, n)),
        Box::new(Collector(ib.clone())),
    ];
    let _ = a;
    let proto = ProtocolConfig::default().with_error_rate(1.0 / 40.0);
    let mut c = ft_cluster(topo, ClusterConfig::default(), proto, hosts);
    c.engine.set_transient_faults(
        TransientFaults {
            loss_prob: 0.01,
            corrupt_prob: 0.01,
            burst: None,
        },
        1234,
    );
    let mut t = Time::from_millis(20);
    while (ib.borrow().len() as u64) < n && t < Time::from_secs(5) {
        c.run_until(t);
        t += Duration::from_millis(20);
    }
    let ids: Vec<u64> = ib.borrow().iter().map(|p| p.msg_id).collect();
    assert_eq!(
        ids,
        (0..n).collect::<Vec<_>>(),
        "exactly once, in order, all faults at once"
    );
    assert!(c.nics[0].core.stats.retransmits.get() > 0);
}

/// Many-to-one incast on a star: four senders hammer one receiver with
/// errors injected; everything arrives per sender in order.
#[test]
fn incast_with_errors() {
    let (topo, hosts_ids) = topology::star(5);
    let sink = hosts_ids[4];
    let per_sender = 60u64;
    let ib = inbox();
    let hosts: Vec<Box<dyn HostAgent>> = (0..5)
        .map(|h| -> Box<dyn HostAgent> {
            if h < 4 {
                Box::new(StreamSender::new(sink, 2048, per_sender))
            } else {
                Box::new(Collector(ib.clone()))
            }
        })
        .collect();
    let proto = ProtocolConfig::default().with_error_rate(1.0 / 50.0);
    let mut c = ft_cluster(topo, ClusterConfig::default(), proto, hosts);
    let mut t = Time::from_millis(20);
    while (ib.borrow().len() as u64) < 4 * per_sender && t < Time::from_secs(5) {
        c.run_until(t);
        t += Duration::from_millis(20);
    }
    let ibb = ib.borrow();
    assert_eq!(ibb.len() as u64, 4 * per_sender);
    for s in 0..4u16 {
        let ids: Vec<u64> = ibb
            .iter()
            .filter(|p| p.src == NodeId(s))
            .map(|p| p.msg_id)
            .collect();
        assert_eq!(
            ids,
            (0..per_sender).collect::<Vec<_>>(),
            "sender {s} stream in order"
        );
    }
}

/// A switch dies on the Figure 2 testbed; the redundant fabric carries the
/// stream after on-demand re-mapping.
#[test]
fn switch_death_failover_on_testbed() {
    let tb = topology::paper_mapping_testbed(2);
    let n_hosts = tb.hosts.len();
    let (src, dst) = (tb.hosts[2], tb.hosts[3]); // on the two leaf switches
    let ib = inbox();
    let count = 150u64;
    let hosts: Vec<Box<dyn HostAgent>> = (0..n_hosts)
        .map(|h| -> Box<dyn HostAgent> {
            if h == src.idx() {
                Box::new(StreamSender::new(dst, 2048, count))
            } else if h == dst.idx() {
                Box::new(Collector(ib.clone()))
            } else {
                Box::new(san_nic::IdleHost)
            }
        })
        .collect();
    let proto = ProtocolConfig {
        perm_fail_threshold: Duration::from_millis(10),
        ..ProtocolConfig::default().with_mapping()
    };
    let mut c = ft_cluster(tb.topo, ClusterConfig::default(), proto, hosts);
    // The leaf-to-leaf shortest route goes through one core switch; kill
    // that entire switch mid-stream.
    let route = c.nics[src.idx()].core.routes.get(dst).unwrap();
    let first_hop = route.hop(0); // leaf2 port 6 → core0, port 7 → core1
    let victim = if first_hop == 6 {
        tb.switches[0]
    } else {
        tb.switches[1]
    };
    c.sim.schedule(
        Time::from_millis(2),
        FabricEvent::SwitchDown { switch: victim }.into(),
    );
    let mut t = Time::from_millis(20);
    while (ib
        .borrow()
        .iter()
        .map(|p| p.msg_id)
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64)
        < count
        && t < Time::from_secs(10)
    {
        c.run_until(t);
        t += Duration::from_millis(20);
    }
    let unique: std::collections::BTreeSet<u64> = ib.borrow().iter().map(|p| p.msg_id).collect();
    assert_eq!(
        unique.len() as u64,
        count,
        "stream must survive a switch death"
    );
    assert!(!c.engine.switch_alive(victim));
}

/// VMMC multi-segment messages (> 4 KB) reassemble correctly across
/// injected errors; payload bytes survive intact.
#[test]
fn vmmc_large_messages_with_errors() {
    use san_nic::{HostCtx, NicTiming};
    use san_vmmc::{ExportId, VmmcLib};

    struct BigSender {
        vmmc: VmmcLib,
        sent: bool,
    }
    impl HostAgent for BigSender {
        fn on_start(&mut self, ctx: &mut HostCtx) {
            self.vmmc.export(1 << 20, None);
            ctx.wake_in(NicTiming::default().host_send_dma, 0);
        }
        fn on_wake(&mut self, ctx: &mut HostCtx, _token: u64) {
            if !self.sent {
                self.sent = true;
                let to = VmmcLib::import(NodeId(1), ExportId(0), 1 << 20);
                // 64 KB of real, patterned data (17 segments).
                let data: Vec<u8> = (0..65536 + 123).map(|i| (i * 31 % 251) as u8).collect();
                self.vmmc.send(ctx, to, 512, bytes::Bytes::from(data));
            }
        }
        fn on_message(&mut self, _ctx: &mut HostCtx, _pkt: san_fabric::Packet) {}
        fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
    }

    type GotCell = std::rc::Rc<std::cell::RefCell<Option<(u32, Vec<u8>)>>>;

    struct BigReceiver {
        vmmc: VmmcLib,
        got: GotCell,
    }
    impl HostAgent for BigReceiver {
        fn on_start(&mut self, _ctx: &mut HostCtx) {
            self.vmmc.export(1 << 20, None);
        }
        fn on_wake(&mut self, _ctx: &mut HostCtx, _token: u64) {}
        fn on_message(&mut self, _ctx: &mut HostCtx, pkt: san_fabric::Packet) {
            if let Some(dm) = self.vmmc.on_packet(&pkt) {
                let data = self.vmmc.read_export(dm.export, dm.offset, dm.len).to_vec();
                *self.got.borrow_mut() = Some((dm.offset, data));
            }
        }
        fn on_send_done(&mut self, _ctx: &mut HostCtx, _msg_id: u64) {}
    }

    let (topo, _a, _b) = topology::pair_via_switch();
    let got = std::rc::Rc::new(std::cell::RefCell::new(None));
    let hosts: Vec<Box<dyn HostAgent>> = vec![
        Box::new(BigSender {
            vmmc: VmmcLib::new(NodeId(0)),
            sent: false,
        }),
        Box::new(BigReceiver {
            vmmc: VmmcLib::new(NodeId(1)),
            got: got.clone(),
        }),
    ];
    let proto = ProtocolConfig::default().with_error_rate(1.0 / 10.0); // brutal
    let mut c = ft_cluster(topo, ClusterConfig::default(), proto, hosts);
    c.run_until(Time::from_millis(200));
    let got = got.borrow();
    let (offset, data) = got.as_ref().expect("message must complete");
    assert_eq!(*offset, 512);
    assert_eq!(data.len(), 65536 + 123);
    for (i, &b) in data.iter().enumerate() {
        assert_eq!(b as usize, i * 31 % 251, "byte {i} corrupted");
    }
}
